package server

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"maybms/client"
)

// buildBigTable loads n rows into table big plus a repair-key table u
// over it, through the client.
func buildBigTable(t *testing.T, c *client.DB, n int) {
	t.Helper()
	c.MustExec(`create table big (id int, grp int, val int, w float)`)
	var b strings.Builder
	b.WriteString(`insert into big values `)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d, %g)", i, i%64, (i*37)%211, 1.0+float64(i%5))
	}
	c.MustExec(b.String())
	c.MustExec(`create table u as select id, grp, val from (repair key grp in big weight by w) r`)
}

// settle polls cond until it holds or the deadline passes.
func settle(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s did not settle within 10s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitVisible polls /v1/queries until a live query running src (or
// any query, when src is empty) appears, returning its id.
func waitVisible(t *testing.T, c *client.DB, src string) string {
	t.Helper()
	var id string
	settle(t, "query visibility in /v1/queries", func() bool {
		qs, err := c.Queries()
		if err != nil {
			t.Fatalf("Queries: %v", err)
		}
		for _, q := range qs {
			if src == "" || strings.Contains(q.SQL, src) {
				id = q.ID
				return true
			}
		}
		return false
	})
	return id
}

// drainedGauges asserts every live-execution gauge returned to zero
// after a kill: registered queries, open snapshots, busy partition
// workers, busy pool workers.
func drainedGauges(t *testing.T, s *Server) {
	t.Helper()
	settle(t, "maybms_queries_active", func() bool { return s.eng.Registry().Active() == 0 })
	settle(t, "maybms_snapshots_open", func() bool { return s.eng.SnapshotsOpen() == 0 })
	settle(t, "maybms_parallel_workers_busy", func() bool { return s.eng.ParallelStats().WorkersBusy.Load() == 0 })
	settle(t, "maybms_pool_workers_busy", func() bool { return s.eng.WorkerPool().Busy() == 0 })
}

// TestKillMidStreamCursor kills a streaming query between batches: the
// stream must end with a typed canceled error (not a clean done
// frame), the cursor's snapshot and worker gauges must drain to zero,
// and the kill must be recorded in the event log and kill counter.
func TestKillMidStreamCursor(t *testing.T) {
	base, _, srv := startServer(t, Options{})
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buildBigTable(t, c, 20000)

	goroutinesBefore := runtime.NumGoroutine()

	// A cross join streams far more rows than any transport buffer
	// holds, so the query is still executing when the kill lands.
	rows, err := c.QueryRows(`select b1.id, b2.id from big b1, big b2 where b1.val <= b2.val`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("stream produced no rows before kill: %v", rows.Err())
	}

	id := waitVisible(t, c, "from big b1")
	if err := c.Kill(id); err != nil {
		t.Fatalf("Kill(%s): %v", id, err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !client.IsCanceled(err) {
		t.Fatalf("killed stream error = %v, want a typed canceled error", err)
	}

	if got := srv.eng.Registry().Killed(); got != 1 {
		t.Errorf("Killed() = %d, want 1", got)
	}
	var killEvents int
	evs, err := c.Events()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Type == "query_kill" && e.ID == id {
			killEvents++
		}
	}
	if killEvents != 1 {
		t.Errorf("event log has %d query_kill events for %s, want 1", killEvents, id)
	}

	drainedGauges(t, srv)
	settle(t, "goroutine count", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+2
	})

	// The engine stays fully usable after the kill.
	v, err := c.QueryFloat(`select count(*) from big`)
	if err != nil || v != 20000 {
		t.Fatalf("post-kill query = %v, %v; want 20000", v, err)
	}
}

// TestKillPoolSaturatedParallelGroupBy kills a Monte Carlo GROUP BY
// aggregation running on a parallelism-4 engine over a 2-worker pool:
// the sampling loops and partition workers must all observe the flag,
// the request must fail with a typed canceled error, and the worker
// gauges must drain to zero afterwards.
func TestKillPoolSaturatedParallelGroupBy(t *testing.T) {
	base, _, srv := startServer(t, Options{Parallelism: 4, WorkerPool: 2})
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buildBigTable(t, c, 4000)

	// Tight aconf bounds demand an enormous trial count — unkillable,
	// this query runs for minutes; killed, it unwinds at the next
	// sampling-poll boundary.
	const slow = `select grp % 8, aconf(0.005, 0.001) from u group by grp % 8`
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(slow)
		done <- err
	}()

	killer, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer killer.Close()
	id := waitVisible(t, killer, "aconf(0.005")
	if err := killer.Kill(id); err != nil {
		t.Fatalf("Kill(%s): %v", id, err)
	}

	select {
	case err := <-done:
		if !client.IsCanceled(err) {
			t.Fatalf("killed query error = %v, want a typed canceled error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("killed query did not unwind within 30s")
	}
	drainedGauges(t, srv)
}

// TestStatementTimeout runs a slow sampling query under a server
// statement timeout: it must fail with the same typed canceled error
// as an explicit kill, bump the timeout counter, and leave no gauge
// behind.
func TestStatementTimeout(t *testing.T) {
	base, _, srv := startServer(t, Options{StatementTimeout: 150 * time.Millisecond})
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buildBigTable(t, c, 4000)

	_, err = c.Query(`select grp % 8, aconf(0.005, 0.001) from u group by grp % 8`)
	if !client.IsCanceled(err) {
		t.Fatalf("timed-out query error = %v, want a typed canceled error", err)
	}
	if got := srv.eng.Registry().TimedOut(); got != 1 {
		t.Errorf("TimedOut() = %d, want 1", got)
	}
	if got := srv.eng.Registry().Killed(); got != 0 {
		t.Errorf("Killed() = %d, want 0 (timeout is not a kill)", got)
	}
	drainedGauges(t, srv)
}

// TestLiveQueriesShowOperatorProgress pins the live introspection
// payload: a running query's /v1/queries row carries its SQL, session
// and a non-empty per-operator tree once planning completes.
func TestLiveQueriesShowOperatorProgress(t *testing.T) {
	base, _, _ := startServer(t, Options{})
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buildBigTable(t, c, 20000)

	rows, err := c.QueryRows(`select b1.id, b2.id from big b1, big b2 where b1.val <= b2.val`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("stream produced no rows: %v", rows.Err())
	}

	var got client.LiveQuery
	settle(t, "live query with operator tree", func() bool {
		qs, err := c.Queries()
		if err != nil {
			t.Fatalf("Queries: %v", err)
		}
		for _, q := range qs {
			if strings.Contains(q.SQL, "from big b1") && len(q.Ops) > 0 {
				got = q
				return true
			}
		}
		return false
	})
	if got.Session == "" {
		t.Error("live query row has no session")
	}
	if got.Engine != "memory" {
		t.Errorf("live query engine = %q, want memory", got.Engine)
	}
	if !strings.Contains(string(got.Ops), "rows") {
		t.Errorf("live operator tree carries no row counters: %s", got.Ops)
	}
	rows.Close()
	settle(t, "registry drain after close", func() bool {
		qs, err := c.Queries()
		return err == nil && len(qs) == 0
	})
}
