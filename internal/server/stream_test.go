package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"maybms/client"
	"maybms/internal/wire"
)

// TestStreamByteIdenticalToQuery is the acceptance criterion: a
// streaming HTTP query returns byte-identical rows to /v1/query for
// the same statement, certain and uncertain alike.
func TestStreamByteIdenticalToQuery(t *testing.T) {
	base, mdb, _ := startServer(t, Options{})
	mdb.MustExec(quickstartSetup)
	mdb.MustExec(`create table nums (n int, label text)`)
	var stmt strings.Builder
	stmt.WriteString("insert into nums values ")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			stmt.WriteByte(',')
		}
		fmt.Fprintf(&stmt, "(%d, 'n%d')", i, i)
	}
	mdb.MustExec(stmt.String())

	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := []string{
		`select n, label from nums where n < 2500 order by n`, // spans multiple batches
		`select * from forecast`,                              // uncertain: lineage per row
		`select outlook, conf() p from forecast group by outlook order by outlook`,
		`select n from nums limit 5 offset 7`,
		`select n from nums where n > 999999`, // empty result
	}
	for _, q := range queries {
		rows, err := c.Query(q)
		if err != nil {
			t.Fatalf("%q: query: %v", q, err)
		}
		st, err := c.QueryRows(q)
		if err != nil {
			t.Fatalf("%q: stream: %v", q, err)
		}
		var got [][]interface{}
		var lineage []string
		for st.Next() {
			row := append([]interface{}(nil), st.Row()...)
			got = append(got, row)
			lineage = append(lineage, st.RowLineage())
		}
		if err := st.Err(); err != nil {
			t.Fatalf("%q: stream err: %v", q, err)
		}
		st.Close()
		if len(got) != rows.Len() {
			t.Fatalf("%q: %d streamed rows vs %d", q, len(got), rows.Len())
		}
		if !reflect.DeepEqual(st.Columns(), rows.Columns) {
			t.Fatalf("%q: columns %v vs %v", q, st.Columns(), rows.Columns)
		}
		for i := range got {
			// Byte-identical: both sides re-encoded through the same
			// tagged-cell wire form must match exactly.
			a, err1 := json.Marshal(mustCells(t, got[i]))
			b, err2 := json.Marshal(mustCells(t, rows.Data[i]))
			if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
				t.Fatalf("%q row %d: %s vs %s (%v %v)", q, i, a, b, err1, err2)
			}
			if !rows.Certain && rows.Lineage[i] != lineage[i] {
				t.Fatalf("%q row %d: lineage %q vs %q", q, i, lineage[i], rows.Lineage[i])
			}
		}
	}
}

func mustCells(t *testing.T, row []interface{}) []wire.Cell {
	t.Helper()
	cells, err := wire.EncodeRows([][]interface{}{row})
	if err != nil {
		t.Fatal(err)
	}
	return cells[0]
}

func TestStreamWriteQueryAdmission(t *testing.T) {
	base, mdb, _ := startServer(t, Options{})
	mdb.MustExec(`create table weather (outlook text, w float);
		insert into weather values ('sun', 6), ('rain', 3), ('snow', 1)`)
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// repair key is a write: the stream endpoint must run it under the
	// server's write admission and then stream the stored result.
	st, err := c.QueryRows(`select conf() from (repair key in weather weight by w) r where outlook <> 'snow'`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatalf("no rows: %v", st.Err())
	}
	if p := st.Row()[0].(float64); p < 0.89 || p > 0.91 {
		t.Fatalf("conf %v, want 0.9", p)
	}
}

func TestStreamErrorsAndMetrics(t *testing.T) {
	base, mdb, srv := startServer(t, Options{})
	mdb.MustExec(`create table t (a int); insert into t values (1), (2), (3)`)
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.QueryRows(`select * from missing`); err == nil {
		t.Error("unknown table accepted")
	} else if ce, ok := err.(*client.Error); !ok || ce.Status != http.StatusBadRequest {
		t.Errorf("error %v", err)
	}
	if _, err := c.QueryRows(`select 1; select 2`); err == nil {
		t.Error("script accepted on stream endpoint")
	}
	if _, err := c.QueryRows(`insert into t values (4)`); err == nil {
		t.Error("DML accepted on stream endpoint")
	}

	st, err := c.QueryRows(`select a from t order by a`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Err(); err != nil || n != 3 {
		t.Fatalf("streamed %d rows, err %v", n, err)
	}
	if st.RowsStreamed() != 3 {
		t.Fatalf("trailer rows %d", st.RowsStreamed())
	}
	st.Close()

	if got := srv.rowsStreamed.Load(); got != 3 {
		t.Errorf("rows_streamed_total %d, want 3", got)
	}
	if got := srv.streamsTotal.Load(); got < 4 {
		t.Errorf("stream_queries_total %d, want >= 4", got)
	}
	// And the counters surface on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if !strings.Contains(body, "maybms_rows_streamed_total 3") ||
		!strings.Contains(body, "maybms_stream_queries_total") {
		t.Errorf("metrics missing stream counters:\n%s", body)
	}
	// Every cursor above was drained or closed, so no snapshot is
	// still pinned.
	if !strings.Contains(body, "maybms_snapshots_open 0") {
		t.Errorf("metrics missing maybms_snapshots_open gauge:\n%s", body)
	}
}

// TestStreamFirstBatchBeforeCompletion verifies per-batch flushing:
// with a result spanning several batches, the client must see the
// first rows while the stream is still open (i.e. before the done
// frame arrives).
func TestStreamFirstBatchBeforeCompletion(t *testing.T) {
	base, mdb, _ := startServer(t, Options{})
	mdb.MustExec(`create table nums (n int)`)
	var stmt strings.Builder
	stmt.WriteString("insert into nums values ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			stmt.WriteByte(',')
		}
		fmt.Fprintf(&stmt, "(%d)", i)
	}
	mdb.MustExec(stmt.String())
	c, err := client.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.QueryRows(`select n from nums`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatalf("no first row: %v", st.Err())
	}
	// The first row is available while the stream has delivered no
	// trailer yet (RowsStreamed is only set by the done frame).
	if st.RowsStreamed() != 0 {
		t.Error("stream already complete after one row; batches are not incremental")
	}
	n := 1
	for st.Next() {
		n++
	}
	if n != 5000 || st.Err() != nil {
		t.Fatalf("streamed %d rows, err %v", n, st.Err())
	}
}

// TestStreamDeadlineClearedForKeepAlive is the regression for the
// poisoned keep-alive connection: the stream handler sets a per-batch
// write deadline on the underlying connection, and used to leave the
// last one armed after the final frame — past the handler's return,
// where it could cut off the response's terminating-chunk flush and
// with it keep-alive reuse of the connection. Two requests on one raw
// connection, with a pause longer than the stream write timeout in
// between, must both succeed.
func TestStreamDeadlineClearedForKeepAlive(t *testing.T) {
	const timeout = 150 * time.Millisecond
	base, mdb, _ := startServer(t, Options{StreamWriteTimeout: timeout})
	mdb.MustExec(`create table nums (n int); insert into nums values (1), (2), (3)`)

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	send := func(path, sql string) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"sql":%q}`, sql)
		fmt.Fprintf(conn, "POST %s HTTP/1.1\r\nHost: maybms\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
			path, len(body), body)
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("%s: reading response: %v (stream write deadline poisoned the connection?)", path, err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("%s: draining response: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %s", path, resp.Status)
		}
		return resp
	}

	send("/v1/query/stream", "select n from nums order by n")
	// Let the last per-batch deadline expire; a handler that forgot to
	// clear it has now armed a bomb under the idle connection.
	time.Sleep(3 * timeout)
	send("/v1/query", "select n from nums limit 1")
}
