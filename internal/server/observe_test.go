package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"maybms/internal/wire"
)

// syncBuffer is an io.Writer safe to read from the test while the
// server writes slow-query lines under its own mutex.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// postQuery issues one /v1/query request and returns the response and
// decoded body.
func postQuery(t *testing.T, base, sql string, hdr map[string]string) (*http.Response, wire.QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(wire.Request{SQL: sql})
	req, err := http.NewRequest("POST", base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/query %q: status %d: %s", sql, resp.StatusCode, raw)
	}
	var qr wire.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode query response: %v", err)
	}
	return resp, qr
}

// Every query response carries a trace id: generated when the client
// sent none, echoed verbatim when it did.
func TestTraceHeaderEchoedAndHonored(t *testing.T) {
	log := &syncBuffer{}
	base, _, _ := startServer(t, Options{SlowQueryLog: log})

	resp, _ := postQuery(t, base, `select 1`, nil)
	gen := resp.Header.Get(wire.TraceHeader)
	if len(gen) != 16 {
		t.Errorf("generated trace id %q, want 16 hex digits", gen)
	}

	resp, _ = postQuery(t, base, `select 2`, map[string]string{wire.TraceHeader: "client-trace-42"})
	if got := resp.Header.Get(wire.TraceHeader); got != "client-trace-42" {
		t.Errorf("trace header = %q, want the client-supplied id echoed", got)
	}
	// The client-supplied id reaches the slow-query log (threshold 0
	// logs everything).
	if !strings.Contains(log.String(), `"trace_id":"client-trace-42"`) {
		t.Errorf("slow-query log missing client trace id:\n%s", log.String())
	}
}

// At threshold 0 every statement emits one JSON log line with the
// analyzed operator tree.
func TestSlowQueryLog(t *testing.T) {
	log := &syncBuffer{}
	base, _, _ := startServer(t, Options{SlowQueryLog: log, SlowQueryThreshold: 0})

	_, qr := postQuery(t, base, `select 1 + 2`, nil)
	if len(qr.Rows) != 1 {
		t.Fatalf("query returned %d rows, want 1", len(qr.Rows))
	}

	sc := bufio.NewScanner(strings.NewReader(log.String()))
	var entry struct {
		Time       string   `json:"time"`
		TraceID    string   `json:"trace_id"`
		Endpoint   string   `json:"endpoint"`
		SQL        string   `json:"sql"`
		DurationMs float64  `json:"duration_ms"`
		Rows       int64    `json:"rows"`
		Plan       []string `json:"plan"`
	}
	found := false
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
			t.Fatalf("slow-query line is not JSON: %v: %s", err, sc.Text())
		}
		if entry.SQL == `select 1 + 2` {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow-query line for the statement:\n%s", log.String())
	}
	if entry.Endpoint != "query" || entry.Rows != 1 || entry.TraceID == "" {
		t.Errorf("slow-query entry = %+v, want endpoint=query rows=1 and a trace id", entry)
	}
	if len(entry.Plan) == 0 || !strings.Contains(strings.Join(entry.Plan, "\n"), "execution:") {
		t.Errorf("slow-query entry missing the analyzed plan: %v", entry.Plan)
	}
	if _, err := time.Parse(time.RFC3339Nano, entry.Time); err != nil {
		t.Errorf("slow-query timestamp %q not RFC3339: %v", entry.Time, err)
	}

	// Above the threshold nothing is logged.
	quiet := &syncBuffer{}
	base2, _, _ := startServer(t, Options{SlowQueryLog: quiet, SlowQueryThreshold: time.Hour})
	postQuery(t, base2, `select 1`, nil)
	if quiet.String() != "" {
		t.Errorf("sub-threshold query was logged:\n%s", quiet.String())
	}
}

// /metrics exposes cumulative latency and row-count histograms after
// queries run.
func TestMetricsHistograms(t *testing.T) {
	base, _, _ := startServer(t, Options{})
	for i := 0; i < 3; i++ {
		postQuery(t, base, fmt.Sprintf(`select %d`, i), nil)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`maybms_query_duration_seconds_bucket{endpoint="query",le="+Inf"} 3`,
		`maybms_query_duration_seconds_count{endpoint="query"} 3`,
		`maybms_query_duration_seconds_bucket{endpoint="exec",le="+Inf"} 0`,
		`maybms_query_rows_returned_bucket{le="1"} 3`,
		`maybms_query_rows_returned_count 3`,
		`maybms_parallel_inline_runs_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Buckets are cumulative: every le bound counts at least as many
	// observations as the one before it.
	last := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `maybms_query_duration_seconds_bucket{endpoint="query"`) {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

// pprof endpoints exist only when opted in.
func TestPprofGated(t *testing.T) {
	off, _, _ := startServer(t, Options{})
	resp, err := http.Get(off + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	on, _, _ := startServer(t, Options{Pprof: true})
	resp, err = http.Get(on + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof with -pprof: status %d, want a 200 index page", resp.StatusCode)
	}
}

// The stream endpoint logs slow queries too, with rows counted across
// all frames.
func TestStreamSlowQueryLog(t *testing.T) {
	log := &syncBuffer{}
	base, mdb, _ := startServer(t, Options{SlowQueryLog: log, SlowQueryThreshold: 0})
	mdb.MustExec(`create table s (x int)`)
	mdb.MustExec(`insert into s values (1), (2), (3), (4), (5)`)

	body, _ := json.Marshal(wire.Request{SQL: `select x from s order by x`})
	resp, err := http.Post(base+"/v1/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(wire.TraceHeader) == "" {
		t.Error("stream response carries no trace id header")
	}
	if !strings.Contains(log.String(), `"endpoint":"stream"`) || !strings.Contains(log.String(), `"rows":5`) {
		t.Errorf("stream slow-query line missing or wrong:\n%s", log.String())
	}
}
