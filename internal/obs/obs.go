// Package obs holds the fixed-bucket Prometheus-style histogram shared
// by the network server's request metrics and the storage engine's
// durability metrics (WAL fsync and checkpoint latency). It is a leaf
// package — standard library only — so storage code can observe into a
// histogram without importing any server layer; the server renders
// every histogram at /metrics scrape time.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// DurationBuckets are the latency histogram bounds in seconds: 1ms to
// 10s, roughly half-decade steps — wide enough for sub-millisecond
// fsyncs and multi-second Monte Carlo aggregations alike.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram: lock-free observes (one
// searched index, one atomic add), cumulative rendering at scrape
// time. Safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    AtomicFloat
}

// NewHistogram returns a histogram over the given le (≤) bucket
// bounds, which must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. Buckets are le (≤) bounds, so the first
// bound not less than v is v's bucket.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Write emits the histogram in Prometheus text format. labels, when
// non-empty, is a rendered label list without braces (`endpoint="query"`).
func (h *Histogram) Write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum.Load())
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum.Load())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
}

// AtomicFloat is a CAS-loop float64 accumulator (histogram sums).
type AtomicFloat struct{ bits atomic.Uint64 }

// Add accumulates v.
func (f *AtomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Load reads the accumulated value.
func (f *AtomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
