// Package wire defines the JSON protocol spoken between the MayBMS
// network server (internal/server) and the client package. Cell values
// are tagged with their type so results survive the round trip exactly
// — plain JSON numbers would collapse int64(1) and float64(1), and the
// client promises results identical to the embedded engine.
package wire

import (
	"encoding/json"
	"fmt"
	"math"
)

// Request is the body of POST /v1/query and POST /v1/exec.
type Request struct {
	// SQL is a script of one or more semicolon-separated statements.
	SQL string `json:"sql"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
	Certain bool     `json:"certain"`
	// Lineage holds per-row condition renderings for uncertain
	// results; omitted for certain ones.
	Lineage []string `json:"lineage,omitempty"`
}

// ExecResponse is the body of a successful POST /v1/exec.
type ExecResponse struct {
	RowsAffected int    `json:"rows_affected"`
	Msg          string `json:"msg,omitempty"`
}

// SessionResponse is the body of a successful POST /v1/session.
type SessionResponse struct {
	Token       string  `json:"token"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// ImportResponse is the body of a successful POST /v1/import.
type ImportResponse struct {
	Count int `json:"count"`
}

// ErrCodeCanceled marks an error caused by query cancellation (KILL
// or statement timeout), so clients can distinguish a killed query
// from an engine failure without parsing the message.
const ErrCodeCanceled = "canceled"

// ErrCodeConflict marks a serialization failure: the transaction's
// COMMIT lost first-committer-wins validation against a concurrent
// commit. The transaction is rolled back; the client should retry it
// from BEGIN.
const ErrCodeConflict = "conflict"

// ErrorResponse is the body of any non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code classifies the error; empty for ordinary failures,
	// ErrCodeCanceled when the query was killed or timed out,
	// ErrCodeConflict when a commit lost snapshot-isolation validation.
	Code string `json:"code,omitempty"`
}

// QueryInfo is one live query in a GET /v1/queries response.
type QueryInfo struct {
	ID             string  `json:"id"`
	SQL            string  `json:"sql"`
	Session        string  `json:"session,omitempty"`
	Engine         string  `json:"engine"`
	Start          string  `json:"start"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Parallelism    int     `json:"parallelism"`
	Canceled       bool    `json:"canceled,omitempty"`
	// Txn is the id of the transaction the statement runs inside; zero
	// for autocommit statements.
	Txn int64 `json:"txn,omitempty"`
	// Ops is the live per-operator tree (rows, batches, timings so
	// far) as rendered by the engine; absent until the statement
	// finishes planning or when live tracing is off. Kept raw so the
	// wire format does not pin the engine's snapshot shape.
	Ops json.RawMessage `json:"ops,omitempty"`
}

// QueriesResponse is the body of GET /v1/queries.
type QueriesResponse struct {
	Queries []QueryInfo `json:"queries"`
}

// KillResponse is the body of a successful DELETE /v1/queries/{id}.
type KillResponse struct {
	Killed bool `json:"killed"`
}

// EventInfo is one engine event in a GET /v1/events response; fields
// mirror the engine's event-log entries.
type EventInfo struct {
	Seq    int64   `json:"seq"`
	Time   string  `json:"time"`
	Type   string  `json:"type"`
	ID     string  `json:"id,omitempty"`
	Msg    string  `json:"msg,omitempty"`
	Bytes  int64   `json:"bytes,omitempty"`
	Millis float64 `json:"ms,omitempty"`
}

// EventsResponse is the body of GET /v1/events.
type EventsResponse struct {
	Events []EventInfo `json:"events"`
}

// StreamFrame is one NDJSON line of a POST /v1/query/stream response.
// Exactly one field is set per frame: a header frame opens the stream,
// batch frames carry rows, and a done or error frame closes it. A
// stream that ends without a done or error frame was truncated and the
// client must not treat it as complete.
type StreamFrame struct {
	Header *StreamHeader `json:"header,omitempty"`
	Batch  *StreamBatch  `json:"batch,omitempty"`
	Done   *StreamDone   `json:"done,omitempty"`
	// Error reports a failure after streaming began (the HTTP status
	// is already committed at that point).
	Error string `json:"error,omitempty"`
	// ErrCode classifies Error; ErrCodeCanceled when the stream was
	// killed or timed out mid-flight.
	ErrCode string `json:"err_code,omitempty"`
}

// StreamHeader is the first frame of a streaming query response.
type StreamHeader struct {
	Columns []string `json:"columns"`
	// Certain reports whether the result is statically known
	// t-certain; uncertain streams carry per-row lineage per batch.
	Certain bool `json:"certain"`
}

// StreamBatch carries one batch of rows, encoded with the same tagged
// cells as QueryResponse so streamed rows are byte-identical to
// /v1/query rows for the same statement.
type StreamBatch struct {
	Rows    [][]Cell `json:"rows"`
	Lineage []string `json:"lineage,omitempty"`
}

// StreamDone is the final frame of a successful stream.
type StreamDone struct {
	// RowsStreamed is the total row count across all batches.
	RowsStreamed int64 `json:"rows_streamed"`
}

// SessionHeader carries the session token on authenticated requests.
const SessionHeader = "X-Maybms-Session"

// TraceHeader carries the query trace id. Clients may set it to
// propagate their own id; otherwise the server generates one. The
// server echoes the id on every response so a slow-query log line can
// be joined with the request that caused it.
const TraceHeader = "X-Maybms-Trace"

// Cell is one result value: nil, int64, float64, string, or bool —
// the same dynamic types maybms.Rows uses. It marshals as a tagged
// object ({"i":1}, {"f":0.5}, {"s":"x"}, {"b":true}) or JSON null.
type Cell struct {
	V interface{}
}

type taggedCell struct {
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
	B *bool    `json:"b,omitempty"`
	// NF carries non-finite floats ("nan", "+inf", "-inf"), which
	// JSON numbers cannot represent.
	NF *string `json:"nf,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c Cell) MarshalJSON() ([]byte, error) {
	switch v := c.V.(type) {
	case nil:
		return []byte("null"), nil
	case int64:
		return json.Marshal(taggedCell{I: &v})
	case float64:
		switch {
		case math.IsNaN(v):
			nf := "nan"
			return json.Marshal(taggedCell{NF: &nf})
		case math.IsInf(v, 1):
			nf := "+inf"
			return json.Marshal(taggedCell{NF: &nf})
		case math.IsInf(v, -1):
			nf := "-inf"
			return json.Marshal(taggedCell{NF: &nf})
		}
		return json.Marshal(taggedCell{F: &v})
	case string:
		return json.Marshal(taggedCell{S: &v})
	case bool:
		return json.Marshal(taggedCell{B: &v})
	default:
		return nil, fmt.Errorf("wire: unsupported cell type %T", c.V)
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Cell) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		c.V = nil
		return nil
	}
	var t taggedCell
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("wire: bad cell %s: %v", data, err)
	}
	switch {
	case t.I != nil:
		c.V = *t.I
	case t.F != nil:
		c.V = *t.F
	case t.S != nil:
		c.V = *t.S
	case t.B != nil:
		c.V = *t.B
	case t.NF != nil:
		switch *t.NF {
		case "nan":
			c.V = math.NaN()
		case "+inf":
			c.V = math.Inf(1)
		case "-inf":
			c.V = math.Inf(-1)
		default:
			return fmt.Errorf("wire: bad non-finite tag %q", *t.NF)
		}
	default:
		// {"b":false} etc. collapse to the empty object under
		// omitempty-style senders; this implementation always sends the
		// field, so an empty object means a zero value is ambiguous.
		// Guard by rejecting it outright.
		return fmt.Errorf("wire: ambiguous empty cell %s", data)
	}
	return nil
}

// EncodeRows converts dynamically typed rows into tagged cells,
// rejecting unsupported types up front (the actual marshalling
// happens once, when the response is encoded).
func EncodeRows(rows [][]interface{}) ([][]Cell, error) {
	out := make([][]Cell, len(rows))
	for i, row := range rows {
		out[i] = make([]Cell, len(row))
		for j, v := range row {
			switch v.(type) {
			case nil, int64, float64, string, bool:
			default:
				return nil, fmt.Errorf("wire: unsupported cell type %T", v)
			}
			out[i][j] = Cell{V: v}
		}
	}
	return out, nil
}

// DecodeRows converts tagged cells back into dynamically typed rows.
func DecodeRows(rows [][]Cell) [][]interface{} {
	out := make([][]interface{}, len(rows))
	for i, row := range rows {
		out[i] = make([]interface{}, len(row))
		for j, c := range row {
			out[i][j] = c.V
		}
	}
	return out
}
