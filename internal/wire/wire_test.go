package wire

import (
	"encoding/json"
	"math"
	"testing"
)

func TestCellRoundTrip(t *testing.T) {
	rows := [][]interface{}{
		{int64(1), float64(1), "x", true, nil},
		{int64(-7), 0.25, "a,'b\"c", false, nil},
		{int64(0), float64(0), "", true, nil},
	}
	cells, err := EncodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	var back [][]Cell
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := DecodeRows(back)
	for i := range rows {
		for j := range rows[i] {
			w, g := rows[i][j], got[i][j]
			if wt, gt := typeName(w), typeName(g); wt != gt || w != g {
				t.Errorf("[%d][%d]: want %s(%v), got %s(%v)", i, j, wt, w, gt, g)
			}
		}
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case nil:
		return "nil"
	case int64:
		return "int64"
	case float64:
		return "float64"
	case string:
		return "string"
	case bool:
		return "bool"
	default:
		return "other"
	}
}

// The whole reason cells are tagged: float64(1) and int64(1) must not
// collapse into the same wire representation.
func TestCellIntFloatFidelity(t *testing.T) {
	ci, _ := json.Marshal(Cell{V: int64(1)})
	cf, _ := json.Marshal(Cell{V: float64(1)})
	if string(ci) == string(cf) {
		t.Fatalf("int and float encode identically: %s", ci)
	}
	var back Cell
	if err := json.Unmarshal(cf, &back); err != nil {
		t.Fatal(err)
	}
	if _, ok := back.V.(float64); !ok {
		t.Errorf("float64(1) decoded as %T", back.V)
	}
}

// Non-finite floats cannot ride in JSON numbers; they get their own
// tag so a query that overflows still round-trips instead of
// becoming an HTTP 500.
func TestCellNonFiniteFloats(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		data, err := json.Marshal(Cell{V: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back Cell
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v (wire %s)", v, err, data)
		}
		f, ok := back.V.(float64)
		if !ok {
			t.Fatalf("%v decoded as %T", v, back.V)
		}
		if math.IsNaN(v) != math.IsNaN(f) || (!math.IsNaN(v) && v != f) {
			t.Errorf("%v round-tripped to %v (wire %s)", v, f, data)
		}
	}
	var c Cell
	if err := c.UnmarshalJSON([]byte(`{"nf":"bogus"}`)); err == nil {
		t.Error("bad non-finite tag must fail to decode")
	}
}

func TestCellErrors(t *testing.T) {
	if _, err := (Cell{V: struct{}{}}).MarshalJSON(); err == nil {
		t.Error("unsupported type must fail to encode")
	}
	var c Cell
	if err := c.UnmarshalJSON([]byte(`{}`)); err == nil {
		t.Error("empty object is ambiguous and must fail to decode")
	}
	if err := c.UnmarshalJSON([]byte(`null`)); err != nil || c.V != nil {
		t.Errorf("null must decode to nil: %v %v", c.V, err)
	}
}
