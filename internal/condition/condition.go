// Package condition implements database conditioning in the sense of
// Koch & Olteanu, "Conditioning Probabilistic Databases" (VLDB 2008) —
// the companion paper behind MayBMS's exact confidence engine. Given
// evidence (an event over the world-set variables, e.g. "the answer to
// this query is non-empty" or an integrity constraint), conditioning
// restricts the represented world set to the worlds satisfying the
// evidence and renormalises.
//
// Under evidence the variables are generally no longer independent, so
// the posterior cannot be stored back into a ws.Store; instead a
// Conditioned value answers posterior queries — event probabilities
// and per-variable marginals — through the exact d-tree solver:
//
//	P(A | B) = P(A ∧ B) / P(B).
package condition

import (
	"fmt"
	"math/rand"

	"maybms/internal/conf/exact"
	"maybms/internal/lineage"
	"maybms/internal/ws"
	"maybms/internal/wstree"
)

// Conditioned is a world-set store conditioned on evidence.
type Conditioned struct {
	src      ws.ProbSource
	evidence lineage.DNF
	pB       float64
	solver   *exact.Solver
	tree     *wstree.Node // lazily built for sampling
}

// New conditions the store on the evidence event. It fails when the
// evidence has probability zero (conditioning on the impossible).
func New(src ws.ProbSource, evidence lineage.DNF) (*Conditioned, error) {
	evidence = evidence.Simplify()
	solver := exact.NewSolver(src)
	pB := 1.0
	if !evidence.HasEmptyClause() {
		pB = solver.Prob(evidence)
	}
	if pB <= 0 {
		return nil, fmt.Errorf("condition: evidence has probability zero")
	}
	return &Conditioned{src: src, evidence: evidence, pB: pB, solver: solver}, nil
}

// EvidenceProb returns P(B), the prior probability of the evidence.
func (c *Conditioned) EvidenceProb() float64 { return c.pB }

// Prob returns the posterior P(A | B).
func (c *Conditioned) Prob(a lineage.DNF) float64 {
	a = a.Simplify()
	if len(a) == 0 {
		return 0
	}
	var joint lineage.DNF
	switch {
	case a.HasEmptyClause():
		return 1
	case c.evidence.HasEmptyClause() || len(c.evidence) == 0:
		joint = a
	default:
		joint = a.AndDNF(c.evidence).Simplify()
	}
	return c.solver.Prob(joint) / c.pB
}

// CondProb returns the posterior probability of a single conjunctive
// condition (a tuple's world-set descriptor) — the conditioned
// analogue of tconf().
func (c *Conditioned) CondProb(cond lineage.Cond) float64 {
	return c.Prob(lineage.DNF{cond})
}

// Marginal returns the posterior distribution of variable v given the
// evidence: out[i] = P(v = i+1 | B) for the explicit alternatives. A
// probability deficit in the result corresponds to the implicit
// residual alternative.
func (c *Conditioned) Marginal(v ws.VarID) []float64 {
	n := c.src.DomainSize(v)
	out := make([]float64, n)
	for val := 1; val <= n; val++ {
		lit := lineage.Lit{Var: v, Val: val}
		cond, _ := lineage.NewCond(lit)
		out[val-1] = c.Prob(lineage.DNF{cond})
	}
	return out
}

// Sample draws a world from the posterior distribution: an assignment
// of the evidence's variables conditioned on the evidence holding.
// Useful for materialising likely repairs in data cleaning. rng may
// be nil for a deterministic default.
func (c *Conditioned) Sample(rng *rand.Rand) map[ws.VarID]int {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if c.tree == nil {
		c.tree = wstree.Build(c.evidence, c.src)
	}
	out := map[ws.VarID]int{}
	if c.evidence.HasEmptyClause() || len(c.evidence) == 0 {
		return out // trivial evidence constrains nothing
	}
	c.tree.Sample(rng, c.src, out)
	return out
}

// MAP returns the most probable explicit alternative of v under the
// evidence (1-based), with its posterior probability.
func (c *Conditioned) MAP(v ws.VarID) (int, float64) {
	best, bestP := 0, -1.0
	for i, p := range c.Marginal(v) {
		if p > bestP {
			best, bestP = i+1, p
		}
	}
	return best, bestP
}
