package condition

import (
	"math"
	"math/rand"
	"testing"

	"maybms/internal/lineage"
	"maybms/internal/workload"
	"maybms/internal/ws"
)

func lit(v ws.VarID, val int) lineage.Lit { return lineage.Lit{Var: v, Val: val} }

func mkCond(t *testing.T, lits ...lineage.Lit) lineage.Cond {
	t.Helper()
	c, ok := lineage.NewCond(lits...)
	if !ok {
		t.Fatal("inconsistent condition in test")
	}
	return c
}

func TestBayesOnTwoCoins(t *testing.T) {
	store := ws.NewStore()
	x, _ := store.NewBoolVar(0.5)
	y, _ := store.NewBoolVar(0.5)
	// Evidence: at least one of x, y is true.
	evidence := lineage.DNF{
		mkCond(t, lit(x, 1)),
		mkCond(t, lit(y, 1)),
	}
	c, err := New(store, evidence)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.EvidenceProb()-0.75) > 1e-12 {
		t.Errorf("P(B)=%v", c.EvidenceProb())
	}
	// P(x | x ∨ y) = 0.5 / 0.75 = 2/3.
	got := c.Prob(lineage.DNF{mkCond(t, lit(x, 1))})
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P(x|B)=%v", got)
	}
	// P(x ∧ y | x ∨ y) = 0.25/0.75 = 1/3.
	got = c.Prob(lineage.DNF{mkCond(t, lit(x, 1), lit(y, 1))})
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("P(x∧y|B)=%v", got)
	}
}

func TestConditioningBreaksIndependence(t *testing.T) {
	store := ws.NewStore()
	x, _ := store.NewBoolVar(0.5)
	y, _ := store.NewBoolVar(0.5)
	evidence := lineage.DNF{mkCond(t, lit(x, 1)), mkCond(t, lit(y, 1))}
	c, _ := New(store, evidence)
	px := c.Prob(lineage.DNF{mkCond(t, lit(x, 1))})
	py := c.Prob(lineage.DNF{mkCond(t, lit(y, 1))})
	pxy := c.Prob(lineage.DNF{mkCond(t, lit(x, 1), lit(y, 1))})
	if math.Abs(pxy-px*py) < 1e-9 {
		t.Error("x and y must be dependent under the evidence")
	}
}

func TestMarginalAndMAP(t *testing.T) {
	store := ws.NewStore()
	// A die with non-uniform faces; evidence: the face is even.
	die, _ := store.NewVar([]float64{0.1, 0.2, 0.1, 0.3, 0.1, 0.2})
	evidence := lineage.DNF{
		mkCond(t, lit(die, 2)),
		mkCond(t, lit(die, 4)),
		mkCond(t, lit(die, 6)),
	}
	c, err := New(store, evidence)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Marginal(die)
	want := []float64{0, 0.2 / 0.7, 0, 0.3 / 0.7, 0, 0.2 / 0.7}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Errorf("marginal[%d]=%v want %v", i, m[i], want[i])
		}
	}
	val, p := c.MAP(die)
	if val != 4 || math.Abs(p-0.3/0.7) > 1e-12 {
		t.Errorf("MAP: %d %v", val, p)
	}
	// Posterior sums to 1.
	total := 0.0
	for _, p := range m {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("posterior mass %v", total)
	}
}

func TestImpossibleEvidence(t *testing.T) {
	store := ws.NewStore()
	x, _ := store.NewVar([]float64{0, 1})
	evidence := lineage.DNF{mkCond(t, lit(x, 1))}
	if _, err := New(store, evidence); err == nil {
		t.Error("zero-probability evidence must fail")
	}
}

func TestTrivialEvidence(t *testing.T) {
	store := ws.NewStore()
	x, _ := store.NewBoolVar(0.3)
	c, err := New(store, lineage.DNF{lineage.TrueCond()})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Prob(lineage.DNF{mkCond(t, lit(x, 1))})
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("conditioning on TRUE must be the prior: %v", got)
	}
	if c.CondProb(mkCond(t, lit(x, 1))) != got {
		t.Error("CondProb must agree with Prob")
	}
}

// TestPosteriorMatchesEnumeration: for random DNFs, the conditioned
// probability equals the ratio of world masses.
func TestPosteriorMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		store := ws.NewStore()
		cfg := workload.DNFConfig{Vars: 5, MaxDomain: 3, Clauses: 3, MaxWidth: 2}
		b := workload.RandomDNF(rng, store, cfg)
		a := workload.RandomDNF(rng, store, cfg) // fresh vars: independent of b
		// Mix: make a share variables with b half the time by
		// conjoining one of b's clauses into a.
		if trial%2 == 0 && len(b) > 0 && len(a) > 0 {
			if merged, ok := a[0].And(b[0]); ok {
				a[0] = merged
			}
		}
		c, err := New(store, b)
		if err != nil {
			continue // zero-probability evidence
		}
		got := c.Prob(a)

		// Ground truth by joint enumeration.
		joint := 0.0
		pb := 0.0
		vars := append(a.Vars(), b.Vars()...)
		store.EnumerateWorlds(dedupeVars(vars), func(assign map[ws.VarID]int, p float64) {
			if b.Eval(assign) {
				pb += p
				if a.Eval(assign) {
					joint += p
				}
			}
		})
		want := joint / pb
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: P(A|B)=%v want %v\nA=%v\nB=%v", trial, got, want, a, b)
		}
	}
}

func dedupeVars(vs []ws.VarID) []ws.VarID {
	seen := map[ws.VarID]bool{}
	var out []ws.VarID
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestSampleMatchesPosterior: sampled worlds follow the conditioned
// distribution.
func TestSampleMatchesPosterior(t *testing.T) {
	store := ws.NewStore()
	x, _ := store.NewBoolVar(0.5)
	y, _ := store.NewBoolVar(0.5)
	evidence := lineage.DNF{mkCond(t, lit(x, 1)), mkCond(t, lit(y, 1))}
	c, err := New(store, evidence)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		w := c.Sample(rng)
		if w[x] == 2 && w[y] == 2 {
			t.Fatal("sampled a world violating the evidence")
		}
		if w[x] == 1 {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-2.0/3) > 0.02 {
		t.Errorf("P(x|B) by sampling: %v want ~2/3", frac)
	}
	// Trivial evidence yields the empty constraint map.
	cTriv, _ := New(store, lineage.DNF{lineage.TrueCond()})
	if w := cTriv.Sample(rng); len(w) != 0 {
		t.Errorf("trivial evidence: %v", w)
	}
}
