// Package lineage implements the condition language of U-relations:
// literals are assignments x↦v of finite random variables, conditions
// (world-set descriptors) are conjunctions of literals stored with each
// tuple, and events are DNFs — disjunctions of conditions — arising
// from duplicate elimination and confidence computation.
package lineage

import (
	"fmt"
	"sort"
	"strings"

	"maybms/internal/ws"
)

// Lit is the atomic condition x ↦ v: random variable Var takes the
// (1-based) alternative Val.
type Lit struct {
	Var ws.VarID
	Val int
}

// String renders the literal as x3->2.
func (l Lit) String() string { return fmt.Sprintf("x%d->%d", l.Var, l.Val) }

// Cond is a conjunction of literals, sorted by variable with no
// duplicate variables. The zero Cond (nil) is the empty conjunction,
// i.e. TRUE — the condition of tuples in t-certain tables.
type Cond []Lit

// TrueCond is the empty conjunction.
func TrueCond() Cond { return nil }

// NewCond builds a normalised condition from literals: sorted by
// variable, duplicates removed. It reports ok=false when two literals
// bind the same variable to different values (an inconsistent, i.e.
// unsatisfiable, condition).
func NewCond(lits ...Lit) (Cond, bool) {
	if len(lits) == 0 {
		return nil, true
	}
	cp := make(Cond, len(lits))
	copy(cp, lits)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Var != cp[j].Var {
			return cp[i].Var < cp[j].Var
		}
		return cp[i].Val < cp[j].Val
	})
	out := cp[:1]
	for _, l := range cp[1:] {
		last := out[len(out)-1]
		if l.Var == last.Var {
			if l.Val != last.Val {
				return nil, false
			}
			continue
		}
		out = append(out, l)
	}
	return out, true
}

// And conjoins two conditions. ok=false signals inconsistency.
func (c Cond) And(o Cond) (Cond, bool) {
	if len(c) == 0 {
		return o, true
	}
	if len(o) == 0 {
		return c, true
	}
	// Merge two sorted literal lists.
	out := make(Cond, 0, len(c)+len(o))
	i, j := 0, 0
	for i < len(c) && j < len(o) {
		a, b := c[i], o[j]
		switch {
		case a.Var < b.Var:
			out = append(out, a)
			i++
		case a.Var > b.Var:
			out = append(out, b)
			j++
		default:
			if a.Val != b.Val {
				return nil, false
			}
			out = append(out, a)
			i++
			j++
		}
	}
	out = append(out, c[i:]...)
	out = append(out, o[j:]...)
	return out, true
}

// Prob returns P(c) = Π P(var=val) under independence of variables.
// The empty condition has probability 1.
func (c Cond) Prob(src ws.ProbSource) float64 {
	p := 1.0
	for _, l := range c {
		p *= src.Prob(l.Var, l.Val)
		if p == 0 {
			return 0
		}
	}
	return p
}

// Eval reports whether the condition holds under a total assignment.
// Variables absent from the assignment make the condition false.
func (c Cond) Eval(assign map[ws.VarID]int) bool {
	for _, l := range c {
		if assign[l.Var] != l.Val {
			return false
		}
	}
	return true
}

// Lookup returns the value c binds v to, if any.
func (c Cond) Lookup(v ws.VarID) (int, bool) {
	i := sort.Search(len(c), func(i int) bool { return c[i].Var >= v })
	if i < len(c) && c[i].Var == v {
		return c[i].Val, true
	}
	return 0, false
}

// Without returns c with all literals over v removed.
func (c Cond) Without(v ws.VarID) Cond {
	out := make(Cond, 0, len(c))
	for _, l := range c {
		if l.Var != v {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Subsumes reports whether c ⊆ o as literal sets, i.e. o implies c
// (c is the weaker condition). Used for DNF absorption.
func (c Cond) Subsumes(o Cond) bool {
	if len(c) > len(o) {
		return false
	}
	j := 0
	for _, l := range c {
		for j < len(o) && o[j].Var < l.Var {
			j++
		}
		if j >= len(o) || o[j] != l {
			return false
		}
		j++
	}
	return true
}

// Key returns a canonical string key for the condition.
func (c Cond) Key() string {
	var b strings.Builder
	for i, l := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", l.Var, l.Val)
	}
	return b.String()
}

// String renders the condition as a conjunction.
func (c Cond) String() string {
	if len(c) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Clone returns a copy of the condition.
func (c Cond) Clone() Cond {
	if c == nil {
		return nil
	}
	out := make(Cond, len(c))
	copy(out, c)
	return out
}

// DNF is a disjunction of conditions: the event that at least one
// clause holds. An empty DNF is FALSE; a DNF containing the empty
// clause is TRUE.
type DNF []Cond

// Vars returns the sorted set of variables mentioned in the DNF.
func (d DNF) Vars() []ws.VarID {
	seen := map[ws.VarID]bool{}
	for _, c := range d {
		for _, l := range c {
			seen[l.Var] = true
		}
	}
	out := make([]ws.VarID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEmptyClause reports whether the DNF is trivially true.
func (d DNF) HasEmptyClause() bool {
	for _, c := range d {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// Eval reports whether the event holds under a total assignment.
func (d DNF) Eval(assign map[ws.VarID]int) bool {
	for _, c := range d {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// Simplify removes duplicate clauses and applies absorption (a clause
// subsumed by a weaker clause is dropped). The result is sorted
// canonically. Simplification preserves the event.
func (d DNF) Simplify() DNF {
	if len(d) == 0 {
		return nil
	}
	// Deduplicate by key.
	uniq := make(DNF, 0, len(d))
	seen := map[string]bool{}
	for _, c := range d {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c.Clone())
		}
	}
	// Absorption: drop clauses strictly implied by a shorter clause.
	sort.Slice(uniq, func(i, j int) bool { return len(uniq[i]) < len(uniq[j]) })
	out := make(DNF, 0, len(uniq))
	for _, c := range uniq {
		absorbed := false
		for _, kept := range out {
			if kept.Subsumes(c) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Key returns a canonical string for the (simplified) DNF, usable for
// memoisation.
func (d DNF) Key() string {
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = c.Key()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// String renders the DNF.
func (d DNF) String() string {
	if len(d) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// Clone deep-copies the DNF.
func (d DNF) Clone() DNF {
	out := make(DNF, len(d))
	for i, c := range d {
		out[i] = c.Clone()
	}
	return out
}

// Stats summarises a DNF for cost estimation and experiment reporting.
type Stats struct {
	Clauses    int     // number of clauses
	Vars       int     // number of distinct variables
	MaxWidth   int     // longest clause
	AvgWidth   float64 // mean clause length
	VarsPerCls float64 // variable-to-clause ratio
}

// ComputeStats returns summary statistics of the DNF.
func (d DNF) ComputeStats() Stats {
	st := Stats{Clauses: len(d)}
	total := 0
	for _, c := range d {
		if len(c) > st.MaxWidth {
			st.MaxWidth = len(c)
		}
		total += len(c)
	}
	st.Vars = len(d.Vars())
	if len(d) > 0 {
		st.AvgWidth = float64(total) / float64(len(d))
		st.VarsPerCls = float64(st.Vars) / float64(len(d))
	}
	return st
}

// Condition restricts the DNF to the subspace where v=val: clauses
// binding v to a different value are dropped; literals v=val are
// removed from the remaining clauses. The result may contain the
// empty clause (TRUE).
func (d DNF) Condition(v ws.VarID, val int) DNF {
	out := make(DNF, 0, len(d))
	for _, c := range d {
		if bound, ok := c.Lookup(v); ok {
			if bound != val {
				continue
			}
			out = append(out, c.Without(v))
		} else {
			out = append(out, c)
		}
	}
	return out
}

// DropVar removes every clause that mentions v. This is the residual
// DNF under any assignment of v not mentioned in the DNF.
func (d DNF) DropVar(v ws.VarID) DNF {
	out := make(DNF, 0, len(d))
	for _, c := range d {
		if _, ok := c.Lookup(v); !ok {
			out = append(out, c)
		}
	}
	return out
}

// AndDNF conjoins two events: (∨ᵢ cᵢ) ∧ (∨ⱼ dⱼ) = ∨ᵢⱼ (cᵢ ∧ dⱼ),
// dropping inconsistent pairs. The result has at most |d|·|o| clauses;
// callers should Simplify it.
func (d DNF) AndDNF(o DNF) DNF {
	out := make(DNF, 0, len(d)*len(o))
	for _, c1 := range d {
		for _, c2 := range o {
			if c, ok := c1.And(c2); ok {
				out = append(out, c)
			}
		}
	}
	return out
}
