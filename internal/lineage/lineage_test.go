package lineage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maybms/internal/ws"
)

func mustCond(t *testing.T, lits ...Lit) Cond {
	t.Helper()
	c, ok := NewCond(lits...)
	if !ok {
		t.Fatalf("unexpected inconsistent condition %v", lits)
	}
	return c
}

func TestNewCondNormalises(t *testing.T) {
	c := mustCond(t, Lit{3, 1}, Lit{1, 2}, Lit{3, 1})
	if len(c) != 2 || c[0] != (Lit{1, 2}) || c[1] != (Lit{3, 1}) {
		t.Errorf("normalisation wrong: %v", c)
	}
}

func TestNewCondInconsistent(t *testing.T) {
	if _, ok := NewCond(Lit{1, 1}, Lit{1, 2}); ok {
		t.Error("x1->1 ∧ x1->2 should be inconsistent")
	}
}

func TestAnd(t *testing.T) {
	a := mustCond(t, Lit{1, 1}, Lit{3, 2})
	b := mustCond(t, Lit{2, 1}, Lit{3, 2})
	c, ok := a.And(b)
	if !ok || len(c) != 3 {
		t.Fatalf("And: %v %v", c, ok)
	}
	d := mustCond(t, Lit{3, 1})
	if _, ok := a.And(d); ok {
		t.Error("contradictory And should fail")
	}
	// TRUE is the identity.
	if e, ok := a.And(TrueCond()); !ok || e.Key() != a.Key() {
		t.Errorf("And TRUE: %v %v", e, ok)
	}
	if e, ok := TrueCond().And(a); !ok || e.Key() != a.Key() {
		t.Errorf("TRUE And: %v %v", e, ok)
	}
}

func TestCondProbAndEval(t *testing.T) {
	s := ws.NewStore()
	x, _ := s.NewVar([]float64{0.3, 0.7})
	y, _ := s.NewVar([]float64{0.5, 0.5})
	c := mustCond(t, Lit{x, 1}, Lit{y, 2})
	if p := c.Prob(s); p != 0.3*0.5 {
		t.Errorf("Prob = %v", p)
	}
	if !c.Eval(map[ws.VarID]int{x: 1, y: 2}) {
		t.Error("should hold")
	}
	if c.Eval(map[ws.VarID]int{x: 1, y: 1}) {
		t.Error("should not hold")
	}
	if TrueCond().Prob(s) != 1 {
		t.Error("TRUE must have probability 1")
	}
}

func TestSubsumes(t *testing.T) {
	a := mustCond(t, Lit{1, 1})
	b := mustCond(t, Lit{1, 1}, Lit{2, 2})
	if !a.Subsumes(b) {
		t.Error("a ⊆ b")
	}
	if b.Subsumes(a) {
		t.Error("b ⊄ a")
	}
	if !TrueCond().Subsumes(a) {
		t.Error("TRUE subsumes everything")
	}
}

func TestWithoutLookup(t *testing.T) {
	c := mustCond(t, Lit{1, 1}, Lit{2, 2})
	if v, ok := c.Lookup(2); !ok || v != 2 {
		t.Errorf("Lookup: %v %v", v, ok)
	}
	if _, ok := c.Lookup(5); ok {
		t.Error("Lookup of absent var")
	}
	r := c.Without(1)
	if len(r) != 1 || r[0] != (Lit{2, 2}) {
		t.Errorf("Without: %v", r)
	}
	if got := c.Without(1).Without(2); got != nil {
		t.Error("removing all literals should give TRUE (nil)")
	}
}

func TestDNFSimplify(t *testing.T) {
	a := mustCond(t, Lit{1, 1})
	b := mustCond(t, Lit{1, 1}, Lit{2, 2})
	d := DNF{b, a, b}.Simplify()
	if len(d) != 1 || d[0].Key() != a.Key() {
		t.Errorf("absorption failed: %v", d)
	}
	empty := DNF{}
	if got := empty.Simplify(); got != nil {
		t.Errorf("empty simplify: %v", got)
	}
}

func TestDNFConditionAndDrop(t *testing.T) {
	x, y := ws.VarID(1), ws.VarID(2)
	d := DNF{
		mustCond(t, Lit{x, 1}, Lit{y, 1}),
		mustCond(t, Lit{x, 2}),
		mustCond(t, Lit{y, 2}),
	}
	c1 := d.Condition(x, 1)
	// Clause 1 loses x; clause 2 (x=2) drops; clause 3 unaffected.
	if len(c1) != 2 {
		t.Fatalf("Condition: %v", c1)
	}
	if c1[0].Key() != mustCond(t, Lit{y, 1}).Key() {
		t.Errorf("Condition clause: %v", c1[0])
	}
	dd := d.DropVar(x)
	if len(dd) != 1 || dd[0].Key() != mustCond(t, Lit{y, 2}).Key() {
		t.Errorf("DropVar: %v", dd)
	}
	// Conditioning the single-literal clause yields the empty clause.
	c2 := d.Condition(x, 2)
	if !c2.HasEmptyClause() {
		t.Errorf("expected TRUE clause: %v", c2)
	}
}

func TestDNFVarsAndStats(t *testing.T) {
	d := DNF{
		mustCond(t, Lit{3, 1}, Lit{1, 1}),
		mustCond(t, Lit{2, 1}),
	}
	vars := d.Vars()
	if len(vars) != 3 || vars[0] != 1 || vars[1] != 2 || vars[2] != 3 {
		t.Errorf("Vars: %v", vars)
	}
	st := d.ComputeStats()
	if st.Clauses != 2 || st.Vars != 3 || st.MaxWidth != 2 || st.AvgWidth != 1.5 || st.VarsPerCls != 1.5 {
		t.Errorf("Stats: %+v", st)
	}
}

// Property: Simplify preserves the event under every assignment.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() DNF {
		nc := 1 + rng.Intn(5)
		d := make(DNF, 0, nc)
		for i := 0; i < nc; i++ {
			nl := rng.Intn(4)
			lits := make([]Lit, 0, nl)
			for j := 0; j < nl; j++ {
				lits = append(lits, Lit{ws.VarID(rng.Intn(4)), 1 + rng.Intn(2)})
			}
			if c, ok := NewCond(lits...); ok {
				d = append(d, c)
			}
		}
		return d
	}
	for trial := 0; trial < 200; trial++ {
		d := gen()
		s := d.Simplify()
		// Enumerate all assignments of vars 0..3 over {1,2,3}.
		var assign map[ws.VarID]int
		for a0 := 1; a0 <= 3; a0++ {
			for a1 := 1; a1 <= 3; a1++ {
				for a2 := 1; a2 <= 3; a2++ {
					for a3 := 1; a3 <= 3; a3++ {
						assign = map[ws.VarID]int{0: a0, 1: a1, 2: a2, 3: a3}
						if d.Eval(assign) != s.Eval(assign) {
							t.Fatalf("Simplify changed semantics:\n d=%v\n s=%v\n assign=%v", d, s, assign)
						}
					}
				}
			}
		}
		// Idempotence.
		if s.Simplify().Key() != s.Key() {
			t.Fatalf("Simplify not idempotent: %v", s)
		}
	}
}

// Property: And is commutative and its probability multiplies for
// disjoint conditions.
func TestAndProperties(t *testing.T) {
	f := func(av, bv uint8) bool {
		a, _ := NewCond(Lit{ws.VarID(av % 4), 1})
		b, _ := NewCond(Lit{ws.VarID(bv%4) + 4, 2})
		ab, ok1 := a.And(b)
		ba, ok2 := b.And(a)
		return ok1 && ok2 && ab.Key() == ba.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
