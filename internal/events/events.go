// Package events is the engine's structured event log: a fixed-size
// ring buffer of typed events (query lifecycle, checkpoints,
// compaction, WAL fsync stalls, session lifecycle) emitted from the
// engine, the disk storage backend, and the network server, and read
// back by GET /v1/events and the shell's \events.
//
// It is a leaf package — standard library only — so storage code can
// emit events without importing any engine layer. All methods are
// nil-safe: a nil *Log drops every event, which keeps emit sites free
// of conditionals.
package events

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the engine.
const (
	QueryStart       = "query_start"
	QueryFinish      = "query_finish"
	QueryKill        = "query_kill"
	StatementTimeout = "statement_timeout"
	CheckpointBegin  = "checkpoint_begin"
	CheckpointEnd    = "checkpoint_end"
	Compaction       = "compaction"
	FsyncStall       = "wal_fsync_stall"
	SessionCreate    = "session_create"
	SessionExpire    = "session_expire"
	TxnBegin         = "txn_begin"
	TxnCommit        = "txn_commit"
	TxnConflict      = "txn_conflict"
	TxnRollback      = "txn_rollback"
)

// Event is one entry in the engine event log.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq int64 `json:"seq"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Type is one of the event-type constants above.
	Type string `json:"type"`
	// ID identifies the subject: a query id for query events, a
	// session token prefix for session events; empty otherwise.
	ID string `json:"id,omitempty"`
	// Msg carries free-form detail (SQL text prefix, error, segment
	// names).
	Msg string `json:"msg,omitempty"`
	// Bytes is a size payload (checkpoint bytes written).
	Bytes int64 `json:"bytes,omitempty"`
	// Millis is a duration payload (checkpoint/fsync wall time).
	Millis float64 `json:"ms,omitempty"`
}

// DefaultSize is the ring capacity used by the engine.
const DefaultSize = 512

// Log is a fixed-size ring of events with an optional JSON-lines
// sink. Safe for concurrent use; nil-safe on every method.
type Log struct {
	mu   sync.Mutex
	buf  []Event
	n    int // valid entries (≤ len(buf))
	next int // ring write position
	seq  int64
	sink io.Writer
}

// NewLog returns a ring holding up to size events (DefaultSize when
// size <= 0).
func NewLog(size int) *Log {
	if size <= 0 {
		size = DefaultSize
	}
	return &Log{buf: make([]Event, size)}
}

// SetSink attaches a JSON-lines writer: every subsequent event is
// additionally serialised as one JSON object per line, under the
// log's mutex — the same single-writer discipline as the slow-query
// log, so concurrent emitters never interleave partial lines.
func (l *Log) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Emit stamps e with the next sequence number and the current time
// and appends it to the ring (evicting the oldest entry when full).
func (l *Log) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	if l.sink != nil {
		if line, err := json.Marshal(e); err == nil {
			l.sink.Write(append(line, '\n'))
		}
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}
