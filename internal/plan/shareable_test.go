package plan

import (
	"testing"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
)

// Shareability gates the parallel executor: expressions whose closures
// memoise subquery results must never be evaluated concurrently.
func TestCompiledShareable(t *testing.T) {
	sch := schema.New(
		schema.Column{Name: "a", Kind: types.KindInt},
		schema.Column{Name: "s", Kind: types.KindText},
	)
	parse := func(src string) sql.Expr {
		t.Helper()
		stmts, err := sql.ParseAll("select 1 from t where " + src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return stmts[0].(*sql.QueryStmt).Query.(*sql.Select).Where
	}
	shareable := []string{
		`a > 3`,
		`a % 7 = 3 and not (a = 5)`,
		`a between 1 and 9 or s like 'x%'`,
		`a in (1, 2, 3)`,
		`coalesce(a, 0) + abs(a) > length(s)`,
		`cast(a as float) < 2.5`,
		`s is not null`,
	}
	for _, src := range shareable {
		c, err := Compile(parse(src), sch)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if !c.Shareable() {
			t.Errorf("%q: want shareable", src)
		}
	}

	// Subquery expressions need the builder's planSub hook; compile via
	// a full plan build against the planner test catalog and inspect
	// the filter.
	for _, src := range []string{
		`select a from r where a in (select b from s) and a > 0`,
		`select a from r where exists (select b from s where b = 1)`,
	} {
		stmts, err := sql.ParseAll(src)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Build(stmts[0].(*sql.QueryStmt).Query, testCatalog())
		if err != nil {
			t.Fatal(err)
		}
		if !findUnshareableFilter(n) {
			t.Errorf("%q: subquery predicate compiled shareable; concurrent evaluation would race on its memoised state", src)
		}
	}
}

// findUnshareableFilter walks the plan for a Filter whose predicate is
// not shareable.
func findUnshareableFilter(n Node) bool {
	switch n := n.(type) {
	case *Filter:
		if !n.Pred.Shareable() {
			return true
		}
		return findUnshareableFilter(n.In)
	case *Project:
		return findUnshareableFilter(n.In)
	case *Rename:
		return findUnshareableFilter(n.In)
	case *Limit:
		return findUnshareableFilter(n.In)
	case *SemiJoinIn:
		return findUnshareableFilter(n.In)
	default:
		return false
	}
}
