package plan

import (
	"fmt"
	"strings"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
)

// Node is a logical operator over U-relations.
type Node interface {
	// Sch is the output schema.
	Sch() *schema.Schema
	// Certain reports whether the output is statically known to be
	// t-certain (condition-free).
	Certain() bool
}

// Scan reads a stored table.
type Scan struct {
	Table   string
	Alias   string
	sch     *schema.Schema
	certain bool
	// Ord is the scan's ordinal in builder traversal order, used by the
	// optimizer to key trace-observed cardinalities back onto the plan
	// shape (the traversal is deterministic per query shape).
	Ord int
	// EstRows is the optimizer's row estimate for this scan after local
	// filters, or 0 when no estimate was computed.
	EstRows int64
}

func (s *Scan) Sch() *schema.Schema { return s.sch }

// Certain reports whether the scanned table is t-certain.
func (s *Scan) Certain() bool { return s.certain }

// Dual produces a single empty certain tuple (SELECT without FROM).
type Dual struct{}

func (*Dual) Sch() *schema.Schema { return schema.New() }

// Certain always holds for Dual.
func (*Dual) Certain() bool { return true }

// Product is the cross product; conditions of paired tuples are
// conjoined and inconsistent pairs vanish.
type Product struct {
	L, R Node
	sch  *schema.Schema
}

func (p *Product) Sch() *schema.Schema { return p.sch }

// Certain holds when both inputs are certain.
func (p *Product) Certain() bool { return p.L.Certain() && p.R.Certain() }

// HashJoin is an equi-join on the given key columns.
type HashJoin struct {
	L, R         Node
	LKeys, RKeys []int
	sch          *schema.Schema
	// LEst and REst are optimizer row estimates for the two inputs
	// (0 = unknown). The executor uses them to pick the build side and
	// pre-size the build map.
	LEst, REst int64
	// BuildLeft tells the executor to materialise the left input as the
	// build side instead of the right (set when LEst < REst).
	BuildLeft bool
}

func (j *HashJoin) Sch() *schema.Schema { return j.sch }

// Certain holds when both inputs are certain.
func (j *HashJoin) Certain() bool { return j.L.Certain() && j.R.Certain() }

// Filter keeps rows whose predicate evaluates to true. Predicates see
// only data columns, per the positive-RA translation.
type Filter struct {
	In   Node
	Pred *Compiled
	// Src is the source AST of the predicate, kept so the optimizer can
	// re-site the conjunct against a different schema. Nil for filters
	// built outside the standard builder.
	Src sql.Expr
	// Pushed marks a predicate the optimizer moved below its original
	// position; EXPLAIN renders the annotation.
	Pushed bool
}

func (f *Filter) Sch() *schema.Schema { return f.In.Sch() }

// Certain is inherited from the input.
func (f *Filter) Certain() bool { return f.In.Certain() }

// SemiJoinIn implements `expr IN (uncertain subquery)` occurring
// positively: each outer row joins every matching subquery tuple,
// conjoining conditions (multiset semantics; duplicates are later
// merged by conf()).
type SemiJoinIn struct {
	In   Node
	Expr *Compiled // evaluated over In's schema
	Sub  Node      // single-column subquery
}

func (s *SemiJoinIn) Sch() *schema.Schema { return s.In.Sch() }

// Certain never holds: the subquery is uncertain.
func (s *SemiJoinIn) Certain() bool { return false }

// ProjItem is one output column of a projection.
type ProjItem struct {
	Expr    *Compiled
	IsTconf bool // tconf(): the marginal probability of the tuple
}

// Project computes the select list for non-aggregate queries.
// Condition columns are preserved, except when tconf() converts the
// result to a t-certain table of marginals.
type Project struct {
	In       Node
	Items    []ProjItem
	HasTconf bool
	sch      *schema.Schema
	// Srcs holds the source AST of each item, letting the optimizer
	// push filters through the projection. Nil for synthetic
	// projections (aggregate output shaping).
	Srcs []sql.Expr
}

func (p *Project) Sch() *schema.Schema { return p.sch }

// Certain holds when the input is certain or tconf() collapsed the
// conditions into marginals.
func (p *Project) Certain() bool { return p.In.Certain() || p.HasTconf }

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggConf AggKind = iota
	AggAconf
	AggESum
	AggECount
	AggArgmax
	AggSum
	AggCount
	AggCountStar
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate computation within a group.
type AggSpec struct {
	Kind       AggKind
	Arg        *Compiled // main argument (nil for conf, count(*), ecount())
	Arg2       *Compiled // argmax value argument
	Eps, Delta float64   // aconf parameters
}

// Aggregate groups rows and computes aggregates; the output is always
// t-certain (confidence and expectation aggregates map uncertain
// tables to t-certain tables).
type Aggregate struct {
	In      Node
	GroupBy []*Compiled
	Aggs    []AggSpec
	// Items are the final select expressions over the synthetic
	// schema [g0..gn-1, agg0..aggm-1].
	Items  []*Compiled
	Having *Compiled // over the synthetic schema, nil if absent
	sch    *schema.Schema
	synth  *schema.Schema
}

func (a *Aggregate) Sch() *schema.Schema { return a.sch }

// Synth is the internal schema [group keys..., aggregates...].
func (a *Aggregate) Synth() *schema.Schema { return a.synth }

// Certain always holds: aggregation returns t-certain tables.
func (a *Aggregate) Certain() bool { return true }

// RepairKey turns a t-certain relation into a block-independent
// uncertain one: within each block (group of tuples agreeing on the
// key), exactly one tuple survives, chosen with probability
// proportional to the weight expression.
type RepairKey struct {
	In     Node
	Keys   []int
	Weight *Compiled // nil = uniform
}

func (r *RepairKey) Sch() *schema.Schema { return r.In.Sch() }

// Certain never holds for repair-key output.
func (r *RepairKey) Certain() bool { return false }

// PickTuples maps a t-certain relation to the distribution over all
// its subsets: each tuple survives independently with the given
// probability.
type PickTuples struct {
	In   Node
	Prob *Compiled // nil = 0.5
}

func (p *PickTuples) Sch() *schema.Schema { return p.In.Sch() }

// Certain never holds for pick-tuples output.
func (p *PickTuples) Certain() bool { return false }

// UnionAll is multiset union.
type UnionAll struct {
	L, R Node
	sch  *schema.Schema
}

func (u *UnionAll) Sch() *schema.Schema { return u.sch }

// Certain holds when both inputs are certain.
func (u *UnionAll) Certain() bool { return u.L.Certain() && u.R.Certain() }

// Distinct removes duplicate tuples of a t-certain input.
type Distinct struct{ In Node }

func (d *Distinct) Sch() *schema.Schema { return d.In.Sch() }

// Certain is inherited (planning guarantees certain input).
func (d *Distinct) Certain() bool { return true }

// Possible returns the distinct data tuples possible in at least one
// world — those whose lineage has a satisfiable, positive-probability
// clause — as a t-certain table.
type Possible struct{ In Node }

func (p *Possible) Sch() *schema.Schema { return p.In.Sch() }

// Certain always holds: possible maps uncertain to t-certain.
func (p *Possible) Certain() bool { return true }

// Sort orders rows by the given keys over the output schema.
type Sort struct {
	In   Node
	Keys []*Compiled
	Desc []bool
}

func (s *Sort) Sch() *schema.Schema { return s.In.Sch() }

// Certain is inherited from the input.
func (s *Sort) Certain() bool { return s.In.Certain() }

// Limit skips Offset rows and keeps the next N.
type Limit struct {
	In     Node
	N      int
	Offset int
}

func (l *Limit) Sch() *schema.Schema { return l.In.Sch() }

// Certain is inherited from the input.
func (l *Limit) Certain() bool { return l.In.Certain() }

// Rename relabels the relation qualifier of every column (FROM-clause
// aliasing of subqueries).
type Rename struct {
	In  Node
	sch *schema.Schema
}

func (r *Rename) Sch() *schema.Schema { return r.sch }

// Certain is inherited from the input.
func (r *Rename) Certain() bool { return r.In.Certain() }

// Build plans a query against the catalog.
func Build(q sql.Query, cat Catalog) (Node, error) {
	b := &builder{cat: cat}
	return b.query(q)
}

type builder struct {
	cat Catalog
	// scanOrd numbers scans in traversal order; the traversal is
	// deterministic, so the same query shape always yields the same
	// numbering — the property the trace-feedback store relies on.
	scanOrd int
}

func (b *builder) query(q sql.Query) (Node, error) {
	switch q := q.(type) {
	case *sql.Select:
		return b.selectQ(q)
	case *sql.Union:
		return b.union(q)
	case *sql.RepairKey:
		return b.repairKey(q)
	case *sql.PickTuples:
		return b.pickTuples(q)
	default:
		return nil, fmt.Errorf("plan: unsupported query %T", q)
	}
}

func (b *builder) union(q *sql.Union) (Node, error) {
	l, err := b.query(q.Left)
	if err != nil {
		return nil, err
	}
	r, err := b.query(q.Right)
	if err != nil {
		return nil, err
	}
	ls, rs := l.Sch(), r.Sch()
	if ls.Len() != rs.Len() {
		return nil, fmt.Errorf("plan: UNION arity mismatch: %d vs %d columns", ls.Len(), rs.Len())
	}
	out := ls.Clone()
	for i := range out.Cols {
		lk, rk := ls.Cols[i].Kind, rs.Cols[i].Kind
		switch {
		case lk == rk:
		case lk == types.KindNull:
			out.Cols[i].Kind = rk
		case rk == types.KindNull:
			// keep lk
		case (lk == types.KindInt || lk == types.KindFloat) && (rk == types.KindInt || rk == types.KindFloat):
			out.Cols[i].Kind = types.KindFloat
		default:
			return nil, fmt.Errorf("plan: UNION column %d type mismatch: %s vs %s", i+1, lk, rk)
		}
	}
	var n Node = &UnionAll{L: l, R: r, sch: out}
	if !q.All {
		// Plain UNION deduplicates; MayBMS restricts duplicate
		// elimination to t-certain relations.
		if !l.Certain() || !r.Certain() {
			return nil, fmt.Errorf("plan: UNION (distinct) requires t-certain inputs; use UNION ALL on uncertain relations")
		}
		n = &Distinct{In: n}
	}
	return n, nil
}

func (b *builder) repairKey(q *sql.RepairKey) (Node, error) {
	in, err := b.query(q.In)
	if err != nil {
		return nil, err
	}
	if !in.Certain() {
		return nil, fmt.Errorf("plan: repair key requires a t-certain input query")
	}
	keys := make([]int, len(q.Attrs))
	for i, a := range q.Attrs {
		idx, err := in.Sch().Resolve(a.Rel, a.Name)
		if err != nil {
			return nil, fmt.Errorf("plan: repair key: %v", err)
		}
		keys[i] = idx
	}
	rk := &RepairKey{In: in, Keys: keys}
	if q.WeightBy != nil {
		w, err := compile(q.WeightBy, in.Sch(), b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: repair key weight: %v", err)
		}
		rk.Weight = w
	}
	return rk, nil
}

func (b *builder) pickTuples(q *sql.PickTuples) (Node, error) {
	in, err := b.query(q.From)
	if err != nil {
		return nil, err
	}
	if !in.Certain() {
		return nil, fmt.Errorf("plan: pick tuples requires a t-certain input query")
	}
	pt := &PickTuples{In: in}
	if q.Prob != nil {
		p, err := compile(q.Prob, in.Sch(), b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: pick tuples probability: %v", err)
		}
		pt.Prob = p
	}
	return pt, nil
}

// planSub returns the subquery planner hook for expression compilation.
func (b *builder) planSub() func(q sql.Query) (Node, error) {
	return func(q sql.Query) (Node, error) { return b.query(q) }
}

func (b *builder) fromItem(fi sql.FromItem) (Node, error) {
	if fi.Subquery != nil {
		n, err := b.query(fi.Subquery)
		if err != nil {
			return nil, err
		}
		return &Rename{In: n, sch: n.Sch().WithRel(fi.Alias)}, nil
	}
	sch, err := b.cat.TableSchema(fi.Table)
	if err != nil {
		return nil, err
	}
	certain, err := b.cat.TableCertain(fi.Table)
	if err != nil {
		return nil, err
	}
	ord := b.scanOrd
	b.scanOrd++
	return &Scan{Table: fi.Table, Alias: fi.Alias, sch: sch.WithRel(fi.Alias), certain: certain, Ord: ord}, nil
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if bin, ok := e.(*sql.Binary); ok && bin.Op == "and" {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []sql.Expr{e}
}

func (b *builder) selectQ(q *sql.Select) (Node, error) {
	// FROM.
	var node Node
	var conjuncts []sql.Expr
	if q.Where != nil {
		conjuncts = splitConjuncts(q.Where)
	}
	used := make([]bool, len(conjuncts))

	if len(q.From) == 0 {
		node = &Dual{}
	} else {
		nodes := make([]Node, len(q.From))
		for i, fi := range q.From {
			n, err := b.fromItem(fi)
			if err != nil {
				return nil, err
			}
			nodes[i] = n
		}
		// Push single-relation predicates down to their scans.
		for i, n := range nodes {
			for j, c := range conjuncts {
				if used[j] || containsAgg(c) || hasUncertainInSub(b, c) {
					continue
				}
				if pred, err := compile(c, n.Sch(), b.planSub()); err == nil {
					nodes[i] = &Filter{In: nodes[i], Pred: pred, Src: c}
					n = nodes[i]
					used[j] = true
					_ = pred
				}
			}
		}
		// Left-deep join in FROM order, turning equality conjuncts
		// into hash-join keys when they straddle the boundary.
		node = nodes[0]
		for i := 1; i < len(nodes); i++ {
			right := nodes[i]
			var lk, rk []int
			for j, c := range conjuncts {
				if used[j] {
					continue
				}
				bin, ok := c.(*sql.Binary)
				if !ok || bin.Op != "=" {
					continue
				}
				li, ri, ok := equiJoinKeys(bin, node.Sch(), right.Sch())
				if !ok {
					continue
				}
				lk = append(lk, li)
				rk = append(rk, ri)
				used[j] = true
			}
			joined := node.Sch().Concat(right.Sch())
			if len(lk) > 0 {
				node = &HashJoin{L: node, R: right, LKeys: lk, RKeys: rk, sch: joined}
			} else {
				node = &Product{L: node, R: right, sch: joined}
			}
			// Attach conjuncts that became evaluable.
			for j, c := range conjuncts {
				if used[j] || containsAgg(c) || hasUncertainInSub(b, c) {
					continue
				}
				if pred, err := compile(c, node.Sch(), b.planSub()); err == nil {
					node = &Filter{In: node, Pred: pred, Src: c}
					used[j] = true
				}
			}
		}
	}
	// Uncertain IN subqueries (positive occurrence only).
	for j, c := range conjuncts {
		if used[j] {
			continue
		}
		if ins, ok := c.(*sql.InSubquery); ok {
			sub, err := b.query(ins.Query)
			if err != nil {
				return nil, err
			}
			if !sub.Certain() {
				if ins.Negate {
					return nil, fmt.Errorf("plan: NOT IN with an uncertain subquery is not supported (must occur positively)")
				}
				if sub.Sch().Len() != 1 {
					return nil, fmt.Errorf("plan: IN subquery must return exactly one column, got %d", sub.Sch().Len())
				}
				expr, err := compile(ins.E, node.Sch(), b.planSub())
				if err != nil {
					return nil, err
				}
				node = &SemiJoinIn{In: node, Expr: expr, Sub: sub}
				used[j] = true
			}
		}
	}
	// Remaining conjuncts must compile now.
	for j, c := range conjuncts {
		if used[j] {
			continue
		}
		if containsAgg(c) {
			return nil, fmt.Errorf("plan: aggregates are not allowed in WHERE")
		}
		pred, err := compile(c, node.Sch(), b.planSub())
		if err != nil {
			return nil, err
		}
		node = &Filter{In: node, Pred: pred, Src: c}
		used[j] = true
	}

	// Expand stars and decide aggregate vs projection.
	items, err := expandStars(q.Items, node.Sch())
	if err != nil {
		return nil, err
	}
	hasAgg := len(q.GroupBy) > 0
	hasTconf := false
	for _, it := range items {
		if it.Expr != nil && sql.IsAggregate(it.Expr) {
			hasAgg = true
		}
		if containsTconf(it.Expr) {
			hasTconf = true
		}
	}
	if q.Having != nil {
		hasAgg = true
	}

	var out Node
	orderHandled := false
	switch {
	case hasTconf:
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("plan: tconf() cannot be combined with GROUP BY; use conf()")
		}
		for _, it := range items {
			if it.Expr != nil && sql.IsAggregate(it.Expr) && !containsTconf(it.Expr) {
				return nil, fmt.Errorf("plan: tconf() cannot be combined with other aggregates")
			}
		}
		out, err = b.buildProject(node, items, true)
	case hasAgg:
		out, err = b.buildAggregate(node, items, q)
		orderHandled = len(q.OrderBy) > 0
	default:
		out, err = b.buildProject(node, items, false)
	}
	if err != nil {
		return nil, err
	}

	if q.Possible {
		if hasAgg || hasTconf {
			return nil, fmt.Errorf("plan: POSSIBLE cannot be combined with aggregates")
		}
		out = &Possible{In: out}
	}
	if q.Distinct {
		if !out.Certain() {
			return nil, fmt.Errorf("plan: SELECT DISTINCT requires a t-certain input; use POSSIBLE or conf() on uncertain relations")
		}
		out = &Distinct{In: out}
	}

	// ORDER BY over the output schema (aliases visible); integer
	// literals are positional references. Aggregate queries may also
	// order by group-by expressions that are not projected; those were
	// handled inside buildAggregate via hidden sort columns.
	if len(q.OrderBy) > 0 && !orderHandled {
		sorted, sortErr := b.buildSort(out, q.OrderBy)
		if sortErr == nil {
			out = sorted
		} else if !hasAgg && !q.Possible && !q.Distinct {
			// Fallback: ORDER BY a column that is not projected —
			// sort the pre-projection input and re-project on top.
			inSorted, err2 := b.buildSort(node, q.OrderBy)
			if err2 != nil {
				return nil, sortErr
			}
			out, err = b.buildProject(inSorted, items, hasTconf)
			if err != nil {
				return nil, err
			}
		} else {
			return nil, sortErr
		}
	}
	if q.Limit >= 0 || q.Offset > 0 {
		n := q.Limit
		if n < 0 {
			n = int(^uint(0) >> 1) // OFFSET without LIMIT
		}
		out = &Limit{In: out, N: n, Offset: q.Offset}
	}
	return out, nil
}

// hasUncertainInSub reports whether the conjunct is an IN over an
// uncertain subquery (which must be planned as a semijoin, not pushed
// down).
func hasUncertainInSub(b *builder, e sql.Expr) bool {
	ins, ok := e.(*sql.InSubquery)
	if !ok {
		return false
	}
	sub, err := b.query(ins.Query)
	return err == nil && !sub.Certain()
}

func containsAgg(e sql.Expr) bool { return e != nil && sql.IsAggregate(e) }

func containsTconf(e sql.Expr) bool {
	switch e := e.(type) {
	case *sql.FuncCall:
		if e.Name == "tconf" {
			return true
		}
		for _, a := range e.Args {
			if containsTconf(a) {
				return true
			}
		}
	case *sql.Unary:
		return containsTconf(e.E)
	case *sql.Binary:
		return containsTconf(e.L) || containsTconf(e.R)
	case *sql.Cast:
		return containsTconf(e.E)
	}
	return false
}

// expandStars replaces * and rel.* with explicit column references.
func expandStars(items []sql.SelectItem, sch *schema.Schema) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range sch.Cols {
			if it.Rel != "" && !strings.EqualFold(c.Rel, it.Rel) {
				continue
			}
			matched = true
			out = append(out, sql.SelectItem{Expr: sql.ColRef{Rel: c.Rel, Name: c.Name}, Alias: c.Name})
		}
		if !matched {
			return nil, fmt.Errorf("plan: %s.* matches no columns", it.Rel)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}

// itemName picks the output column name for a select item.
func itemName(it sql.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case sql.ColRef:
		return e.Name
	case *sql.FuncCall:
		return e.Name
	}
	return fmt.Sprintf("column%d", i+1)
}

func (b *builder) buildProject(in Node, items []sql.SelectItem, allowTconf bool) (Node, error) {
	p := &Project{In: in, Srcs: make([]sql.Expr, len(items))}
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		p.Srcs[i] = it.Expr
		if fc, ok := it.Expr.(*sql.FuncCall); ok && fc.Name == "tconf" {
			if !allowTconf {
				return nil, fmt.Errorf("plan: tconf() not allowed here")
			}
			if len(fc.Args) != 0 {
				return nil, fmt.Errorf("plan: tconf() takes no arguments")
			}
			p.Items = append(p.Items, ProjItem{IsTconf: true})
			p.HasTconf = true
			cols[i] = schema.Column{Name: itemName(it, i), Kind: types.KindFloat}
			continue
		}
		c, err := compile(it.Expr, in.Sch(), b.planSub())
		if err != nil {
			return nil, err
		}
		p.Items = append(p.Items, ProjItem{Expr: c})
		name := itemName(it, i)
		rel := ""
		if cr, ok := it.Expr.(sql.ColRef); ok && it.Alias == "" {
			rel = cr.Rel
		}
		cols[i] = schema.Column{Rel: rel, Name: name, Kind: c.Kind()}
	}
	p.sch = schema.New(cols...)
	return p, nil
}
