package plan

import (
	"fmt"
	"strings"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
)

// equiJoinKeys recognises `l.col = r.col` conjuncts usable as hash-join
// keys across the given schemas (in either order).
func equiJoinKeys(bin *sql.Binary, ls, rs *schema.Schema) (int, int, bool) {
	lc, ok1 := bin.L.(sql.ColRef)
	rc, ok2 := bin.R.(sql.ColRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if li, err := ls.Resolve(lc.Rel, lc.Name); err == nil {
		if ri, err := rs.Resolve(rc.Rel, rc.Name); err == nil {
			return li, ri, true
		}
	}
	if li, err := ls.Resolve(rc.Rel, rc.Name); err == nil {
		if ri, err := rs.Resolve(lc.Rel, lc.Name); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

// resolvedKey canonicalises an expression for GROUP BY matching:
// column references resolve to schema positions so that qualified and
// unqualified spellings of the same column compare equal.
func resolvedKey(e sql.Expr, sch *schema.Schema) string {
	switch e := e.(type) {
	case sql.ColRef:
		if idx, err := sch.Resolve(e.Rel, e.Name); err == nil {
			return fmt.Sprintf("colidx:%d", idx)
		}
		return "col:" + strings.ToLower(e.Rel) + "." + strings.ToLower(e.Name)
	case *sql.Unary:
		return "(" + e.Op + " " + resolvedKey(e.E, sch) + ")"
	case *sql.Binary:
		return "(" + resolvedKey(e.L, sch) + " " + e.Op + " " + resolvedKey(e.R, sch) + ")"
	case *sql.FuncCall:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = resolvedKey(a, sch)
		}
		star := ""
		if e.Star {
			star = "*"
		}
		return e.Name + "(" + star + strings.Join(parts, ",") + ")"
	case *sql.Cast:
		return fmt.Sprintf("cast(%s as %s)", resolvedKey(e.E, sch), e.Kind)
	case *sql.IsNull:
		return fmt.Sprintf("(%s is null neg=%v)", resolvedKey(e.E, sch), e.Negate)
	default:
		return ExprString(e)
	}
}

const (
	synthGBPrefix  = "__g"
	synthAggPrefix = "__agg"
)

// aggCollector accumulates aggregate specs while rewriting select
// items to reference the synthetic [group keys..., aggregates...]
// schema.
type aggCollector struct {
	b        *builder
	inSch    *schema.Schema
	gbKeys   map[string]int
	specs    []AggSpec
	specKeys map[string]int
	specKind []types.Kind
	hasArgmx bool
}

// rewrite replaces group-by subexpressions and aggregate calls with
// synthetic column references.
func (ac *aggCollector) rewrite(e sql.Expr) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if idx, ok := ac.gbKeys[resolvedKey(e, ac.inSch)]; ok {
		return sql.ColRef{Name: fmt.Sprintf("%s%d", synthGBPrefix, idx)}, nil
	}
	switch e := e.(type) {
	case *sql.FuncCall:
		if sql.AggregateNames[e.Name] {
			idx, err := ac.addSpec(e)
			if err != nil {
				return nil, err
			}
			return sql.ColRef{Name: fmt.Sprintf("%s%d", synthAggPrefix, idx)}, nil
		}
		args := make([]sql.Expr, len(e.Args))
		for i, a := range e.Args {
			na, err := ac.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &sql.FuncCall{Name: e.Name, Args: args, Star: e.Star}, nil
	case *sql.Unary:
		in, err := ac.rewrite(e.E)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: e.Op, E: in}, nil
	case *sql.Binary:
		l, err := ac.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := ac.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: e.Op, L: l, R: r}, nil
	case *sql.Cast:
		in, err := ac.rewrite(e.E)
		if err != nil {
			return nil, err
		}
		return &sql.Cast{E: in, Kind: e.Kind}, nil
	case *sql.IsNull:
		in, err := ac.rewrite(e.E)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{E: in, Negate: e.Negate}, nil
	default:
		return e, nil
	}
}

// addSpec registers an aggregate call, deduplicating identical calls.
func (ac *aggCollector) addSpec(e *sql.FuncCall) (int, error) {
	key := resolvedKey(e, ac.inSch)
	if idx, ok := ac.specKeys[key]; ok {
		return idx, nil
	}
	spec, kind, err := ac.makeSpec(e)
	if err != nil {
		return 0, err
	}
	if spec.Kind == AggArgmax {
		if ac.hasArgmx {
			return 0, fmt.Errorf("plan: at most one argmax per query")
		}
		ac.hasArgmx = true
	}
	idx := len(ac.specs)
	ac.specs = append(ac.specs, spec)
	ac.specKind = append(ac.specKind, kind)
	ac.specKeys[key] = idx
	return idx, nil
}

func (ac *aggCollector) makeSpec(e *sql.FuncCall) (AggSpec, types.Kind, error) {
	compileArg := func(i int) (*Compiled, error) {
		return compile(e.Args[i], ac.inSch, ac.b.planSub())
	}
	switch e.Name {
	case "conf":
		if len(e.Args) != 0 || e.Star {
			return AggSpec{}, 0, fmt.Errorf("plan: conf() takes no arguments")
		}
		return AggSpec{Kind: AggConf}, types.KindFloat, nil
	case "aconf":
		spec := AggSpec{Kind: AggAconf, Eps: 0.05, Delta: 0.05}
		if len(e.Args) == 2 {
			eps, ok1 := constFloat(e.Args[0])
			delta, ok2 := constFloat(e.Args[1])
			if !ok1 || !ok2 {
				return AggSpec{}, 0, fmt.Errorf("plan: aconf(eps, delta) requires numeric literals")
			}
			spec.Eps, spec.Delta = eps, delta
		} else if len(e.Args) != 0 {
			return AggSpec{}, 0, fmt.Errorf("plan: aconf takes zero or two arguments")
		}
		return spec, types.KindFloat, nil
	case "tconf":
		return AggSpec{}, 0, fmt.Errorf("plan: tconf() cannot be combined with GROUP BY or other aggregates")
	case "esum":
		if len(e.Args) != 1 {
			return AggSpec{}, 0, fmt.Errorf("plan: esum(expr) takes one argument")
		}
		arg, err := compileArg(0)
		if err != nil {
			return AggSpec{}, 0, err
		}
		return AggSpec{Kind: AggESum, Arg: arg}, types.KindFloat, nil
	case "ecount":
		spec := AggSpec{Kind: AggECount}
		if len(e.Args) == 1 {
			arg, err := compileArg(0)
			if err != nil {
				return AggSpec{}, 0, err
			}
			spec.Arg = arg
		} else if len(e.Args) != 0 && !e.Star {
			return AggSpec{}, 0, fmt.Errorf("plan: ecount takes zero or one argument")
		}
		return spec, types.KindFloat, nil
	case "argmax":
		if len(e.Args) != 2 {
			return AggSpec{}, 0, fmt.Errorf("plan: argmax(arg, value) takes two arguments")
		}
		arg, err := compileArg(0)
		if err != nil {
			return AggSpec{}, 0, err
		}
		val, err := compileArg(1)
		if err != nil {
			return AggSpec{}, 0, err
		}
		return AggSpec{Kind: AggArgmax, Arg: arg, Arg2: val}, arg.Kind(), nil
	case "count":
		if e.Star {
			return AggSpec{Kind: AggCountStar}, types.KindInt, nil
		}
		if len(e.Args) != 1 {
			return AggSpec{}, 0, fmt.Errorf("plan: count takes * or one argument")
		}
		arg, err := compileArg(0)
		if err != nil {
			return AggSpec{}, 0, err
		}
		return AggSpec{Kind: AggCount, Arg: arg}, types.KindInt, nil
	case "sum", "avg", "min", "max":
		if len(e.Args) != 1 {
			return AggSpec{}, 0, fmt.Errorf("plan: %s takes one argument", e.Name)
		}
		arg, err := compileArg(0)
		if err != nil {
			return AggSpec{}, 0, err
		}
		kind := map[string]AggKind{"sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax}[e.Name]
		out := arg.Kind()
		if e.Name == "avg" {
			out = types.KindFloat
		}
		return AggSpec{Kind: kind, Arg: arg}, out, nil
	default:
		return AggSpec{}, 0, fmt.Errorf("plan: unknown aggregate %q", e.Name)
	}
}

// constFloat extracts a numeric literal (possibly negated).
func constFloat(e sql.Expr) (float64, bool) {
	switch e := e.(type) {
	case sql.Lit:
		return e.Val.AsFloat()
	case *sql.Unary:
		if e.Op == "-" {
			f, ok := constFloat(e.E)
			return -f, ok
		}
	}
	return 0, false
}

// buildSort plans ORDER BY against a node's output schema; integer
// literals are positional references.
func (b *builder) buildSort(in Node, orderBy []sql.OrderItem) (Node, error) {
	keys := make([]*Compiled, len(orderBy))
	desc := make([]bool, len(orderBy))
	for i, oi := range orderBy {
		desc[i] = oi.Desc
		if lit, ok := oi.Expr.(sql.Lit); ok && lit.Val.Kind() == types.KindInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > in.Sch().Len() {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
			}
			idx := pos - 1
			keys[i] = colRefCompiled(in.Sch(), idx)
			continue
		}
		k, err := compile(oi.Expr, in.Sch(), b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: ORDER BY: %v", err)
		}
		keys[i] = k
	}
	return &Sort{In: in, Keys: keys, Desc: desc}, nil
}

// colRefCompiled returns a compiled expression selecting column idx —
// a pure positional read, trivially shareable across goroutines.
func colRefCompiled(sch *schema.Schema, idx int) *Compiled {
	return &Compiled{
		kind:      sch.Cols[idx].Kind,
		eval:      func(_ *EvalCtx, row schema.Tuple) (types.Value, error) { return row[idx], nil },
		shareable: true,
	}
}

// buildAggregate plans a grouped query: standard SQL aggregates demand
// t-certain groups; conf/aconf/esum/ecount work on uncertain inputs
// and produce t-certain outputs. ORDER BY is planned here too, since
// it may reference group-by expressions that are not projected: those
// become hidden output columns that a final projection strips.
func (b *builder) buildAggregate(in Node, items []sql.SelectItem, q *sql.Select) (Node, error) {
	ac := &aggCollector{
		b:        b,
		inSch:    in.Sch(),
		gbKeys:   map[string]int{},
		specKeys: map[string]int{},
	}
	// Compile group-by expressions against the input schema.
	gb := make([]*Compiled, len(q.GroupBy))
	for i, e := range q.GroupBy {
		c, err := compile(e, in.Sch(), b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: GROUP BY: %v", err)
		}
		gb[i] = c
		ac.gbKeys[resolvedKey(e, in.Sch())] = i
	}
	// Rewrite select items and HAVING.
	rewritten := make([]sql.Expr, len(items))
	for i, it := range items {
		ne, err := ac.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		rewritten[i] = ne
	}
	var havingRw sql.Expr
	if q.Having != nil {
		ne, err := ac.rewrite(q.Having)
		if err != nil {
			return nil, err
		}
		havingRw = ne
	}
	// Pre-register aggregates appearing only in ORDER BY so they get
	// synthetic slots before the schema is frozen.
	for _, oi := range q.OrderBy {
		if sql.IsAggregate(oi.Expr) {
			if _, err := ac.rewrite(oi.Expr); err != nil {
				return nil, err
			}
		}
	}
	// Synthetic schema.
	synthCols := make([]schema.Column, 0, len(gb)+len(ac.specs))
	for i, c := range gb {
		synthCols = append(synthCols, schema.Column{Name: fmt.Sprintf("%s%d", synthGBPrefix, i), Kind: c.Kind()})
	}
	for i := range ac.specs {
		synthCols = append(synthCols, schema.Column{Name: fmt.Sprintf("%s%d", synthAggPrefix, i), Kind: ac.specKind[i]})
	}
	synth := schema.New(synthCols...)

	agg := &Aggregate{In: in, GroupBy: gb, Aggs: ac.specs, synth: synth}
	outCols := make([]schema.Column, len(items))
	for i, it := range items {
		c, err := compile(rewritten[i], synth, b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: select item %d must use aggregates or GROUP BY expressions: %v", i+1, err)
		}
		agg.Items = append(agg.Items, c)
		outCols[i] = schema.Column{Name: itemName(it, i), Kind: c.Kind()}
	}
	if havingRw != nil {
		c, err := compile(havingRw, synth, b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: HAVING must use aggregates or GROUP BY expressions: %v", err)
		}
		agg.Having = c
	}
	if len(q.OrderBy) == 0 {
		agg.sch = schema.New(outCols...)
		return agg, nil
	}

	// ORDER BY: positional and alias references resolve against the
	// visible output; anything else is rewritten like a select item
	// and carried as a hidden output column.
	visible := schema.New(outCols...)
	type sortRef struct {
		idx  int // column in the (extended) aggregate output
		desc bool
	}
	refs := make([]sortRef, len(q.OrderBy))
	hiddenCols := outCols
	for i, oi := range q.OrderBy {
		refs[i].desc = oi.Desc
		if lit, ok := oi.Expr.(sql.Lit); ok && lit.Val.Kind() == types.KindInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(items) {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
			}
			refs[i].idx = pos - 1
			continue
		}
		// Alias or output-column reference?
		if cr, ok := oi.Expr.(sql.ColRef); ok && cr.Rel == "" {
			if idx, err := visible.Resolve("", cr.Name); err == nil {
				refs[i].idx = idx
				continue
			}
		}
		// Hidden sort column: rewrite against group keys/aggregates.
		rw, err := ac.rewrite(oi.Expr)
		if err != nil {
			return nil, fmt.Errorf("plan: ORDER BY: %v", err)
		}
		c, err := compile(rw, synth, b.planSub())
		if err != nil {
			return nil, fmt.Errorf("plan: ORDER BY must use aggregates or GROUP BY expressions: %v", err)
		}
		refs[i].idx = len(hiddenCols)
		agg.Items = append(agg.Items, c)
		hiddenCols = append(hiddenCols, schema.Column{
			Name: fmt.Sprintf("__sort%d", i), Kind: c.Kind(),
		})
	}
	agg.sch = schema.New(hiddenCols...)

	keys := make([]*Compiled, len(refs))
	desc := make([]bool, len(refs))
	for i, r := range refs {
		keys[i] = colRefCompiled(agg.sch, r.idx)
		desc[i] = r.desc
	}
	var out Node = &Sort{In: agg, Keys: keys, Desc: desc}
	if len(hiddenCols) > len(outCols) || len(hiddenCols) != len(items) {
		// Strip hidden columns with an identity projection.
		proj := &Project{In: out, sch: visible}
		for i := range items {
			proj.Items = append(proj.Items, ProjItem{Expr: colRefCompiled(agg.sch, i)})
		}
		out = proj
	}
	return out, nil
}
