package plan

// The optimization pass between plan compilation and execution. The
// builder is syntax-directed: joins follow FROM order, filters sit
// where the WHERE clause could first compile them. Optimize rewrites
// the tree — predicate pushdown, product-to-hash-join conversion,
// greedy join reordering, and build-side/estimate stamping for the
// executor — under one invariant: the optimized plan must produce
// byte-identical results to the unoptimized plan at every parallelism
// degree. Rewrites therefore come in two flavours:
//
//   - order-preserving rewrites (pushdown, product→hash-join): moving
//     a filter below a join or converting a filtered product into a
//     hash join keeps the surviving rows in exactly the original
//     emission order, so nothing else is needed;
//
//   - order-restoring rewrites (join reordering): a left-deep join
//     tree emits rows in lexicographic order of its leaves' row
//     positions, so the reordered tree tags every leaf row with its
//     position (Number), joins in the cheaper order, sorts on the
//     position columns in the original leaf order, and strips the
//     tags while restoring the original column order (Remap).
//
// Lineage safety: conditions are canonical sorted conjunctions
// (lineage.And merges by variable ID), so conjoining them in a
// different join order yields identical bytes. What is NOT safe is
// changing the order in which world-set variables are allocated, so
// any subtree that can allocate variables at execution time
// (repair-key, pick-tuples, or a predicate containing a subquery —
// even a plan-certain subquery may evaluate repair-key under an
// aggregate) anchors its region: such leaves are never reordered and
// such predicates are never moved.

import (
	"fmt"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
)

// Estimator supplies base-table row counts for cost estimation. The
// database snapshot satisfies it (exec.PartitionCatalog.TableLen).
type Estimator interface {
	TableLen(name string) (int, error)
}

// OptOptions configures Optimize.
type OptOptions struct {
	// Est supplies table row counts; without it, join reordering and
	// build-side selection are skipped (pushdown still runs).
	Est Estimator
	// Feedback maps Scan.Ord to the row count observed at the top of
	// that scan's leaf pipeline in a previous traced execution of the
	// same normalized query — the trace-fed cardinalities the ROADMAP
	// planner item calls for. Overrides the heuristic estimate.
	Feedback map[int]int64
}

// Optimize rewrites a freshly built plan. It mutates the tree in place
// and returns the (possibly new) root.
func Optimize(n Node, opts OptOptions) Node {
	o := &optimizer{opts: opts}
	n = pushdownWalk(n)
	n = joinConvWalk(n)
	if opts.Est != nil {
		n = o.reorderWalk(n)
	}
	o.stamp(n)
	return n
}

type optimizer struct {
	opts    OptOptions
	posSeq  int // unique suffix for Number position columns
	tblRows map[string]int64
}

// ---------------------------------------------------------------------------
// Order-restoration operators.

// Number appends a hidden INT column holding each row's position in
// stream order (0, 1, 2, ...). The optimizer places one on every leaf
// of a reordered join region; a Sort on these columns restores the
// original emission order. Number needs a global counter, so the
// parallel executor never partitions through it (it is unknown to
// fragment detection and falls back to serial — exactly the safe
// behaviour).
type Number struct {
	In  Node
	sch *schema.Schema
}

// Sch is the input schema plus the trailing position column.
func (n *Number) Sch() *schema.Schema { return n.sch }

// Certain is inherited from the input.
func (n *Number) Certain() bool { return n.In.Certain() }

// Remap is a pure positional projection: output column i is input
// column Cols[i], conditions carried through unchanged. The optimizer
// uses it to strip Number's position columns and restore the original
// column order after a join reorder.
type Remap struct {
	In   Node
	Cols []int
	sch  *schema.Schema
}

// Sch is the remapped schema (the original join-region schema).
func (r *Remap) Sch() *schema.Schema { return r.sch }

// Certain is inherited from the input.
func (r *Remap) Certain() bool { return r.In.Certain() }

func (o *optimizer) number(in Node) *Number {
	cols := make([]schema.Column, 0, in.Sch().Len()+1)
	cols = append(cols, in.Sch().Cols...)
	cols = append(cols, schema.Column{Name: fmt.Sprintf("__pos%d", o.posSeq), Kind: types.KindInt})
	o.posSeq++
	return &Number{In: in, sch: schema.New(cols...)}
}

// ---------------------------------------------------------------------------
// Tree plumbing.

// replaceChildren applies f to every plan input of n, in place.
func replaceChildren(n Node, f func(Node) Node) {
	switch n := n.(type) {
	case *Product:
		n.L, n.R = f(n.L), f(n.R)
	case *HashJoin:
		n.L, n.R = f(n.L), f(n.R)
	case *Filter:
		n.In = f(n.In)
	case *SemiJoinIn:
		n.In, n.Sub = f(n.In), f(n.Sub)
	case *Project:
		n.In = f(n.In)
	case *Aggregate:
		n.In = f(n.In)
	case *RepairKey:
		n.In = f(n.In)
	case *PickTuples:
		n.In = f(n.In)
	case *UnionAll:
		n.L, n.R = f(n.L), f(n.R)
	case *Distinct:
		n.In = f(n.In)
	case *Possible:
		n.In = f(n.In)
	case *Sort:
		n.In = f(n.In)
	case *Limit:
		n.In = f(n.In)
	case *Rename:
		n.In = f(n.In)
	case *Number:
		n.In = f(n.In)
	case *Remap:
		n.In = f(n.In)
	}
}

// exprHasSubquery reports whether e contains a subquery. Unknown forms
// count as subqueries (conservative): a subquery can allocate
// world-set variables at evaluation time even when its plan is
// certain, so predicates containing one are never moved.
func exprHasSubquery(e sql.Expr) bool {
	switch e := e.(type) {
	case nil, sql.ColRef, sql.Lit, sql.Param:
		return false
	case *sql.Unary:
		return exprHasSubquery(e.E)
	case *sql.Binary:
		return exprHasSubquery(e.L) || exprHasSubquery(e.R)
	case *sql.FuncCall:
		for _, a := range e.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
		return false
	case *sql.InList:
		if exprHasSubquery(e.E) {
			return true
		}
		for _, x := range e.List {
			if exprHasSubquery(x) {
				return true
			}
		}
		return false
	case *sql.IsNull:
		return exprHasSubquery(e.E)
	case *sql.Between:
		return exprHasSubquery(e.E) || exprHasSubquery(e.Lo) || exprHasSubquery(e.Hi)
	case *sql.Cast:
		return exprHasSubquery(e.E)
	default:
		return true
	}
}

// collectColRefs gathers every column reference in e, or reports false
// when e contains a form it does not understand.
func collectColRefs(e sql.Expr, out *[]sql.ColRef) bool {
	switch e := e.(type) {
	case nil, sql.Lit, sql.Param:
		return true
	case sql.ColRef:
		*out = append(*out, e)
		return true
	case *sql.Unary:
		return collectColRefs(e.E, out)
	case *sql.Binary:
		return collectColRefs(e.L, out) && collectColRefs(e.R, out)
	case *sql.FuncCall:
		for _, a := range e.Args {
			if !collectColRefs(a, out) {
				return false
			}
		}
		return true
	case *sql.InList:
		if !collectColRefs(e.E, out) {
			return false
		}
		for _, x := range e.List {
			if !collectColRefs(x, out) {
				return false
			}
		}
		return true
	case *sql.IsNull:
		return collectColRefs(e.E, out)
	case *sql.Between:
		return collectColRefs(e.E, out) && collectColRefs(e.Lo, out) && collectColRefs(e.Hi, out)
	case *sql.Cast:
		return collectColRefs(e.E, out)
	default:
		return false
	}
}

// rewriteColRefs rebuilds e with every column reference replaced by
// sub(ref); sub returning ok=false aborts the rewrite.
func rewriteColRefs(e sql.Expr, sub func(sql.ColRef) (sql.Expr, bool)) (sql.Expr, bool) {
	switch e := e.(type) {
	case nil, sql.Lit, sql.Param:
		return e, true
	case sql.ColRef:
		return sub(e)
	case *sql.Unary:
		in, ok := rewriteColRefs(e.E, sub)
		if !ok {
			return nil, false
		}
		return &sql.Unary{Op: e.Op, E: in}, true
	case *sql.Binary:
		l, ok1 := rewriteColRefs(e.L, sub)
		r, ok2 := rewriteColRefs(e.R, sub)
		if !ok1 || !ok2 {
			return nil, false
		}
		return &sql.Binary{Op: e.Op, L: l, R: r}, true
	case *sql.FuncCall:
		args := make([]sql.Expr, len(e.Args))
		for i, a := range e.Args {
			na, ok := rewriteColRefs(a, sub)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &sql.FuncCall{Name: e.Name, Args: args, Star: e.Star}, true
	case *sql.InList:
		in, ok := rewriteColRefs(e.E, sub)
		if !ok {
			return nil, false
		}
		list := make([]sql.Expr, len(e.List))
		for i, x := range e.List {
			nx, ok := rewriteColRefs(x, sub)
			if !ok {
				return nil, false
			}
			list[i] = nx
		}
		return &sql.InList{E: in, List: list, Negate: e.Negate}, true
	case *sql.IsNull:
		in, ok := rewriteColRefs(e.E, sub)
		if !ok {
			return nil, false
		}
		return &sql.IsNull{E: in, Negate: e.Negate}, true
	case *sql.Between:
		in, ok1 := rewriteColRefs(e.E, sub)
		lo, ok2 := rewriteColRefs(e.Lo, sub)
		hi, ok3 := rewriteColRefs(e.Hi, sub)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		return &sql.Between{E: in, Lo: lo, Hi: hi, Negate: e.Negate}, true
	case *sql.Cast:
		in, ok := rewriteColRefs(e.E, sub)
		if !ok {
			return nil, false
		}
		return &sql.Cast{E: in, Kind: e.Kind}, true
	default:
		return nil, false
	}
}

// ---------------------------------------------------------------------------
// Pass 1: predicate pushdown.

// pushdownWalk sinks every movable Filter as far down its input as the
// schemas allow. Children first, so stacked filters each get their
// shot at the lowest position.
func pushdownWalk(n Node) Node {
	replaceChildren(n, pushdownWalk)
	if f, ok := n.(*Filter); ok && f.Src != nil && !exprHasSubquery(f.Src) {
		if nn, ok := sink(f.Src, f.In); ok {
			return nn
		}
	}
	return n
}

// sink tries to place pred strictly below n's top operator, returning
// a node equivalent to Filter(pred)(n). Every traversal below is
// order-preserving: filtering before a sort, rename, projection, or on
// one side of a product/hash join keeps the surviving rows in exactly
// the order the original post-filter produced.
func sink(pred sql.Expr, n Node) (Node, bool) {
	switch t := n.(type) {
	case *Filter:
		// Crossing another filter is not by itself a win; only succeed
		// if the predicate keeps descending.
		if in, ok := sink(pred, t.In); ok {
			t.In = in
			return t, true
		}
		return nil, false
	case *Sort:
		return sinkThrough(pred, t, &t.In)
	case *SemiJoinIn:
		return sinkThrough(pred, t, &t.In)
	case *Rename:
		// Rewrite each reference from the alias qualifier back to the
		// inner schema's own qualifiers, verifying the round trip.
		inner := t.In.Sch()
		rw, ok := rewriteColRefs(pred, func(cr sql.ColRef) (sql.Expr, bool) {
			idx, err := t.sch.Resolve(cr.Rel, cr.Name)
			if err != nil {
				return nil, false
			}
			nc := sql.ColRef{Rel: inner.Cols[idx].Rel, Name: inner.Cols[idx].Name}
			if got, err := inner.Resolve(nc.Rel, nc.Name); err != nil || got != idx {
				return nil, false
			}
			return nc, true
		})
		if !ok {
			return nil, false
		}
		return sinkThrough(rw, t, &t.In)
	case *Project:
		if t.Srcs == nil || t.HasTconf {
			return nil, false
		}
		// Substitute each output column by its source expression; only
		// plain pass-through column references are substituted, so the
		// predicate stays a cheap column predicate below the projection.
		rw, ok := rewriteColRefs(pred, func(cr sql.ColRef) (sql.Expr, bool) {
			idx, err := t.sch.Resolve(cr.Rel, cr.Name)
			if err != nil {
				return nil, false
			}
			src, isCol := t.Srcs[idx].(sql.ColRef)
			if !isCol {
				return nil, false
			}
			return src, true
		})
		if !ok {
			return nil, false
		}
		return sinkThrough(rw, t, &t.In)
	case *Product:
		return sinkJoinSide(pred, t, t.L, t.R, func(l Node) { t.L = l }, func(r Node) { t.R = r })
	case *HashJoin:
		return sinkJoinSide(pred, t, t.L, t.R, func(l Node) { t.L = l }, func(r Node) { t.R = r })
	}
	return nil, false
}

// sinkThrough places pred below single-input node t (whose input slot
// is *in), descending further when possible.
func sinkThrough(pred sql.Expr, t Node, in *Node) (Node, bool) {
	if nn, ok := sink(pred, *in); ok {
		*in = nn
		return t, true
	}
	if f, ok := wrapFilter(pred, *in); ok {
		*in = f
		return t, true
	}
	return nil, false
}

// sinkJoinSide routes pred to whichever join input covers all of its
// column references. Resolution against the join's output schema plus
// a per-side round-trip check guarantees each reference binds to the
// same underlying column after the move.
func sinkJoinSide(pred sql.Expr, join Node, l, r Node, setL, setR func(Node)) (Node, bool) {
	var refs []sql.ColRef
	if !collectColRefs(pred, &refs) || len(refs) == 0 {
		return nil, false
	}
	sch := join.Sch()
	llen := l.Sch().Len()
	side := 0 // -1 left, 1 right
	for _, cr := range refs {
		gi, err := sch.Resolve(cr.Rel, cr.Name)
		if err != nil {
			return nil, false
		}
		s := -1
		if gi >= llen {
			s = 1
		}
		if side == 0 {
			side = s
		} else if side != s {
			return nil, false
		}
		if s < 0 {
			if got, err := l.Sch().Resolve(cr.Rel, cr.Name); err != nil || got != gi {
				return nil, false
			}
		} else {
			if got, err := r.Sch().Resolve(cr.Rel, cr.Name); err != nil || got != gi-llen {
				return nil, false
			}
		}
	}
	target, set := l, setL
	if side > 0 {
		target, set = r, setR
	}
	if nn, ok := sink(pred, target); ok {
		set(nn)
		return join, true
	}
	if f, ok := wrapFilter(pred, target); ok {
		set(f)
		return join, true
	}
	return nil, false
}

// wrapFilter compiles pred against n's schema and wraps n, marking the
// filter as optimizer-placed for EXPLAIN.
func wrapFilter(pred sql.Expr, n Node) (Node, bool) {
	c, err := Compile(pred, n.Sch())
	if err != nil {
		return nil, false
	}
	return &Filter{In: n, Pred: c, Src: pred, Pushed: true}, true
}

// ---------------------------------------------------------------------------
// Pass 2: product → hash join.

// joinConvWalk converts Filter(l.c = r.c)(Product) into a HashJoin and
// folds further equality filters into an existing join's key list.
// The conversion is restricted to key columns of identical primitive
// kind (INT, TEXT, BOOLEAN): the filter compares with SQL `=`
// semantics (numeric coercion across int/float, -0.0 = 0.0) while the
// hash join compares canonical key strings, and the two only coincide
// on exactly-representable kinds. Emission order is preserved: a hash
// join emits, per left row, its matches in right scan order — the same
// subsequence the filtered product produced.
func joinConvWalk(n Node) Node {
	replaceChildren(n, joinConvWalk)
	f, ok := n.(*Filter)
	if !ok || f.Src == nil {
		return n
	}
	bin, ok := f.Src.(*sql.Binary)
	if !ok || bin.Op != "=" {
		return n
	}
	switch in := f.In.(type) {
	case *Product:
		li, ri, ok := equiJoinKeys(bin, in.L.Sch(), in.R.Sch())
		if !ok || !hashableKeyPair(in.L.Sch(), li, in.R.Sch(), ri) {
			return n
		}
		return &HashJoin{L: in.L, R: in.R, LKeys: []int{li}, RKeys: []int{ri}, sch: in.sch}
	case *HashJoin:
		li, ri, ok := equiJoinKeys(bin, in.L.Sch(), in.R.Sch())
		if !ok || !hashableKeyPair(in.L.Sch(), li, in.R.Sch(), ri) {
			return n
		}
		in.LKeys = append(in.LKeys, li)
		in.RKeys = append(in.RKeys, ri)
		return in
	}
	return n
}

// hashableKeyPair reports whether an equality on these two columns may
// be evaluated by canonical-key hashing instead of SQL `=`.
func hashableKeyPair(ls *schema.Schema, li int, rs *schema.Schema, ri int) bool {
	lk, rk := ls.Cols[li].Kind, rs.Cols[ri].Kind
	if lk != rk {
		return false
	}
	switch lk {
	case types.KindInt, types.KindText, types.KindBool:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Pass 3: greedy join reordering.

// regionLeaf is one input of a contiguous Product/HashJoin region.
type regionLeaf struct {
	node  Node
	set   func(Node) // writes a replacement back into the original tree
	start int        // global column offset of this leaf's schema
}

type regionEdge struct {
	a, b int // global column indexes of an equi-join key pair
}

func isJoin(n Node) bool {
	switch n.(type) {
	case *Product, *HashJoin:
		return true
	}
	return false
}

func (o *optimizer) reorderWalk(n Node) Node {
	if isJoin(n) {
		return o.reorderRegion(n)
	}
	replaceChildren(n, o.reorderWalk)
	return n
}

// gatherRegion flattens a join region into its leaves and equi-join
// edges, with every key translated to a global column index over the
// in-order concatenation of the leaf schemas.
func gatherRegion(n Node, base int, leaves *[]regionLeaf, edges *[]regionEdge, set func(Node)) int {
	switch t := n.(type) {
	case *Product:
		lw := gatherRegion(t.L, base, leaves, edges, func(x Node) { t.L = x })
		rw := gatherRegion(t.R, base+lw, leaves, edges, func(x Node) { t.R = x })
		return lw + rw
	case *HashJoin:
		lw := gatherRegion(t.L, base, leaves, edges, func(x Node) { t.L = x })
		rw := gatherRegion(t.R, base+lw, leaves, edges, func(x Node) { t.R = x })
		for i := range t.LKeys {
			*edges = append(*edges, regionEdge{a: base + t.LKeys[i], b: base + lw + t.RKeys[i]})
		}
		return lw + rw
	default:
		*leaves = append(*leaves, regionLeaf{node: n, set: set, start: base})
		return n.Sch().Len()
	}
}

// simpleChain reports whether a leaf is a plain scan pipeline —
// Scan, optionally under movable Filters, Renames — with no construct
// that could allocate world-set variables or hide evaluation state.
// Only such leaves may be reordered.
func simpleChain(n Node) bool {
	switch t := n.(type) {
	case *Scan:
		return true
	case *Filter:
		return t.Src != nil && !exprHasSubquery(t.Src) && simpleChain(t.In)
	case *Rename:
		return simpleChain(t.In)
	default:
		return false
	}
}

func (o *optimizer) reorderRegion(root Node) Node {
	var leaves []regionLeaf
	var edges []regionEdge
	totalCols := gatherRegion(root, 0, &leaves, &edges, nil)

	// Optimize inside each leaf first (nested regions live under
	// subquery plans).
	for i := range leaves {
		nn := o.reorderWalk(leaves[i].node)
		if nn != leaves[i].node && leaves[i].set != nil {
			leaves[i].set(nn)
		}
		leaves[i].node = nn
	}

	if len(leaves) < 3 {
		return root
	}
	for i := range leaves {
		if !simpleChain(leaves[i].node) {
			return root
		}
	}

	ests := make([]int64, len(leaves))
	for i := range leaves {
		ests[i] = o.chainEst(leaves[i].node)
	}

	perm := greedyOrder(leaves, edges, ests)
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		return root
	}

	oldCost, _ := orderCost(leaves, edges, ests, identityPerm(len(leaves)))
	newCost, finalEst := orderCost(leaves, edges, ests, perm)
	// Adopt only on a clear win: the restored-order sort costs about
	// one pass over the output, and estimates are rough.
	if newCost+finalEst >= oldCost*4/5 {
		return root
	}
	return o.rebuildRegion(root, leaves, edges, ests, perm, totalCols)
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// leafIndexOfCol maps a global column index to its leaf.
func leafIndexOfCol(leaves []regionLeaf, g int) int {
	for i := len(leaves) - 1; i >= 0; i-- {
		if g >= leaves[i].start {
			return i
		}
	}
	return 0
}

// greedyOrder picks the smallest-estimate leaf first, then repeatedly
// the smallest leaf connected to the chosen set by an equi-join edge
// (falling back to the smallest remaining leaf when nothing connects —
// a cross product). Ties break on the original ordinal, keeping the
// choice deterministic.
func greedyOrder(leaves []regionLeaf, edges []regionEdge, ests []int64) []int {
	n := len(leaves)
	chosen := make([]bool, n)
	perm := make([]int, 0, n)
	adj := make([][]int, n)
	for _, e := range edges {
		la, lb := leafIndexOfCol(leaves, e.a), leafIndexOfCol(leaves, e.b)
		adj[la] = append(adj[la], lb)
		adj[lb] = append(adj[lb], la)
	}
	pickMin := func(eligible func(int) bool) int {
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] || !eligible(i) {
				continue
			}
			if best < 0 || ests[i] < ests[best] {
				best = i
			}
		}
		return best
	}
	connected := func(i int) bool {
		for _, j := range adj[i] {
			if chosen[j] {
				return true
			}
		}
		return false
	}
	first := pickMin(func(int) bool { return true })
	chosen[first] = true
	perm = append(perm, first)
	for len(perm) < n {
		next := pickMin(connected)
		if next < 0 {
			next = pickMin(func(int) bool { return true })
		}
		chosen[next] = true
		perm = append(perm, next)
	}
	return perm
}

// orderCost sums the estimated sizes of every intermediate join result
// for the given leaf order, returning the total and the final result
// estimate.
func orderCost(leaves []regionLeaf, edges []regionEdge, ests []int64, perm []int) (cost, final int64) {
	in := make(map[int]bool, len(perm))
	in[perm[0]] = true
	cur := ests[perm[0]]
	for k := 1; k < len(perm); k++ {
		next := perm[k]
		hasEdge := false
		for _, e := range edges {
			la, lb := leafIndexOfCol(leaves, e.a), leafIndexOfCol(leaves, e.b)
			if (in[la] && lb == next) || (in[lb] && la == next) {
				hasEdge = true
				break
			}
		}
		if hasEdge {
			cur = minInt64(cur, ests[next])
		} else {
			cur = satMul(cur, ests[next])
		}
		cost = satAdd(cost, cur)
		in[next] = true
	}
	return cost, cur
}

// rebuildRegion assembles the reordered left-deep join tree with
// Number-tagged leaves, a restoring Sort on the position columns in
// original leaf order, and a Remap back to the original schema.
func (o *optimizer) rebuildRegion(root Node, leaves []regionLeaf, edges []regionEdge, ests []int64, perm []int, totalCols int) Node {
	// Global id space: original columns keep their index; leaf i's
	// position column gets id totalCols+i.
	posID := func(leaf int) int { return totalCols + leaf }
	wrapped := make([]*Number, len(leaves))
	for i := range leaves {
		wrapped[i] = o.number(leaves[i].node)
	}
	leafGlobals := func(i int) []int {
		w := leaves[i].node.Sch().Len()
		g := make([]int, 0, w+1)
		for c := 0; c < w; c++ {
			g = append(g, leaves[i].start+c)
		}
		return append(g, posID(i))
	}

	used := make([]bool, len(edges))
	cur := Node(wrapped[perm[0]])
	curGlobals := leafGlobals(perm[0])
	curEst := ests[perm[0]]
	inSet := map[int]bool{perm[0]: true}
	posOf := func(globals []int, g int) int {
		for i, x := range globals {
			if x == g {
				return i
			}
		}
		return -1
	}
	for k := 1; k < len(perm); k++ {
		next := perm[k]
		nextG := leafGlobals(next)
		var lk, rk []int
		for ei, e := range edges {
			if used[ei] {
				continue
			}
			la, lb := leafIndexOfCol(leaves, e.a), leafIndexOfCol(leaves, e.b)
			var setCol, nextCol int
			switch {
			case inSet[la] && lb == next:
				setCol, nextCol = e.a, e.b
			case inSet[lb] && la == next:
				setCol, nextCol = e.b, e.a
			default:
				continue
			}
			used[ei] = true
			lk = append(lk, posOf(curGlobals, setCol))
			rk = append(rk, nextCol-leaves[next].start)
		}
		joined := cur.Sch().Concat(wrapped[next].Sch())
		if len(lk) > 0 {
			nextEst := ests[next]
			cur = &HashJoin{
				L: cur, R: wrapped[next], LKeys: lk, RKeys: rk, sch: joined,
				LEst: curEst, REst: nextEst, BuildLeft: curEst < nextEst,
			}
			curEst = minInt64(curEst, nextEst)
		} else {
			cur = &Product{L: cur, R: wrapped[next], sch: joined}
			curEst = satMul(curEst, ests[next])
		}
		curGlobals = append(curGlobals, nextG...)
		inSet[next] = true
	}

	// Restore the original emission order: a left-deep join tree emits
	// rows lexicographically by leaf row position in leaf order, so
	// sorting the reordered output on the position columns in the
	// ORIGINAL leaf order reproduces it exactly (position combinations
	// are unique, so the sort is total).
	keys := make([]*Compiled, len(leaves))
	desc := make([]bool, len(leaves))
	for i := range leaves {
		keys[i] = colRefCompiled(cur.Sch(), posOf(curGlobals, posID(i)))
	}
	var out Node = &Sort{In: cur, Keys: keys, Desc: desc}

	// Strip position columns and restore the original column order.
	cols := make([]int, totalCols)
	for g := 0; g < totalCols; g++ {
		cols[g] = posOf(curGlobals, g)
	}
	return &Remap{In: out, Cols: cols, sch: root.Sch()}
}

// ---------------------------------------------------------------------------
// Pass 4: estimates, build-side selection.

// stamp walks the tree bottom-up recording scan estimates and, for
// every hash join, the per-side estimates the executor uses to choose
// the build side and pre-size the build map.
func (o *optimizer) stamp(n Node) {
	for _, c := range Children(n) {
		o.stamp(c)
	}
	switch t := n.(type) {
	case *Scan:
		if o.opts.Est != nil {
			t.EstRows = o.tableRows(t.Table)
		}
	case *HashJoin:
		if o.opts.Est != nil && t.LEst == 0 && t.REst == 0 {
			t.LEst = o.chainEst(t.L)
			t.REst = o.chainEst(t.R)
			t.BuildLeft = t.LEst > 0 && t.REst > 0 && t.LEst < t.REst
		}
	}
}

func (o *optimizer) tableRows(name string) int64 {
	if o.tblRows == nil {
		o.tblRows = map[string]int64{}
	}
	if v, ok := o.tblRows[name]; ok {
		return v
	}
	var v int64
	if rows, err := o.opts.Est.TableLen(name); err == nil {
		v = int64(rows)
		if v < 1 {
			v = 1
		}
	}
	o.tblRows[name] = v
	return v
}

// chainEst estimates the rows flowing out of a node, preferring a
// trace-observed cardinality when the node is the top of a scan
// pipeline the feedback store has seen.
func (o *optimizer) chainEst(n Node) int64 {
	if ord, ok := chainScanOrd(n); ok {
		if v, ok := o.opts.Feedback[ord]; ok && v > 0 {
			return v
		}
	}
	return o.est(n)
}

// ObserveChains extracts trace-fed cardinalities from an executed
// plan: for every scan leaf pipeline (a maximal Filter/Rename/Number
// chain over a Scan), rows(top) is asked for the observed row count at
// the chain's top node, and the result is keyed by the underlying
// Scan.Ord — exactly the map OptOptions.Feedback consumes when the
// same normalized query is planned again.
func ObserveChains(root Node, rows func(Node) (int64, bool)) map[int]int64 {
	out := map[int]int64{}
	var walk func(n Node, inChain bool)
	walk = func(n Node, inChain bool) {
		if !inChain {
			if ord, ok := chainScanOrd(n); ok {
				if v, vok := rows(n); vok {
					out[ord] = v
				}
				inChain = true
			}
		}
		switch n.(type) {
		case *Filter, *Rename, *Number:
			// Children stay inside the current chain (if any).
		default:
			inChain = false
		}
		for _, c := range Children(n) {
			walk(c, inChain)
		}
	}
	walk(root, false)
	return out
}

// chainScanOrd finds the Scan at the bottom of a Filter/Rename/Number
// pipeline.
func chainScanOrd(n Node) (int, bool) {
	for {
		switch t := n.(type) {
		case *Scan:
			return t.Ord, true
		case *Filter:
			n = t.In
		case *Rename:
			n = t.In
		case *Number:
			n = t.In
		default:
			return 0, false
		}
	}
}

// est is the heuristic cardinality model: table length at the leaves,
// textbook selectivities for filters, min-input for equi-joins.
func (o *optimizer) est(n Node) int64 {
	switch t := n.(type) {
	case *Scan:
		if t.EstRows > 0 {
			return t.EstRows
		}
		if o.opts.Est != nil {
			return o.tableRows(t.Table)
		}
		return 1000
	case *Dual:
		return 1
	case *Filter:
		v := o.est(t.In)
		num, den := selectivity(t.Src)
		v = v * num / den
		if v < 1 {
			v = 1
		}
		return v
	case *Rename:
		return o.est(t.In)
	case *Number:
		return o.est(t.In)
	case *Remap:
		return o.est(t.In)
	case *Project:
		return o.est(t.In)
	case *Sort:
		return o.est(t.In)
	case *SemiJoinIn:
		return o.est(t.In)
	case *Limit:
		v := o.est(t.In)
		lim := int64(t.N) + int64(t.Offset)
		if lim >= 0 && lim < v {
			v = lim
		}
		if v < 1 {
			v = 1
		}
		return v
	case *HashJoin:
		return minInt64(o.est(t.L), o.est(t.R))
	case *Product:
		return satMul(o.est(t.L), o.est(t.R))
	case *UnionAll:
		return satAdd(o.est(t.L), o.est(t.R))
	case *Distinct:
		return o.est(t.In)
	case *Possible:
		return o.est(t.In)
	case *Aggregate:
		v := o.est(t.In) / 10
		if v < 1 {
			v = 1
		}
		return v
	case *RepairKey:
		return o.est(t.In)
	case *PickTuples:
		return o.est(t.In)
	default:
		return 1000
	}
}

// selectivity returns the estimated pass fraction of a predicate as a
// num/den pair: equality 1/10, range 2/5, everything else 1/2.
func selectivity(src sql.Expr) (num, den int64) {
	switch e := src.(type) {
	case *sql.Binary:
		switch e.Op {
		case "=":
			return 1, 10
		case "<", "<=", ">", ">=":
			return 2, 5
		case "and":
			n1, d1 := selectivity(e.L)
			n2, d2 := selectivity(e.R)
			return n1 * n2, d1 * d2
		}
	case *sql.Between:
		return 2, 5
	}
	return 1, 2
}

const estCap = int64(1) << 40

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func satAdd(a, b int64) int64 {
	if a+b > estCap || a+b < 0 {
		return estCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > estCap/b {
		return estCap
	}
	return a * b
}

// ---------------------------------------------------------------------------
// Cacheability.

// Cacheable reports whether a plan may be stored in the normalized
// plan cache and re-executed concurrently: every compiled expression
// must be shareable (subquery expressions memoise state and are not),
// and the uncertainty-introducing operators must be absent (they
// allocate fresh world-set variables on every run).
func Cacheable(n Node) bool {
	if n == nil {
		return true
	}
	switch t := n.(type) {
	case *RepairKey, *PickTuples:
		return false
	case *Filter:
		if !compiledShareable(t.Pred) {
			return false
		}
	case *SemiJoinIn:
		if !compiledShareable(t.Expr) {
			return false
		}
	case *Project:
		for _, it := range t.Items {
			if it.Expr != nil && !compiledShareable(it.Expr) {
				return false
			}
		}
	case *Aggregate:
		for _, g := range t.GroupBy {
			if !compiledShareable(g) {
				return false
			}
		}
		for _, a := range t.Aggs {
			if !compiledShareable(a.Arg) || !compiledShareable(a.Arg2) {
				return false
			}
		}
		for _, it := range t.Items {
			if !compiledShareable(it) {
				return false
			}
		}
		if !compiledShareable(t.Having) {
			return false
		}
	case *Sort:
		for _, k := range t.Keys {
			if !compiledShareable(k) {
				return false
			}
		}
	}
	for _, c := range Children(n) {
		if !Cacheable(c) {
			return false
		}
	}
	return true
}

func compiledShareable(c *Compiled) bool { return c == nil || c.Shareable() }
