package plan

import (
	"fmt"
	"strings"
	"testing"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
	"maybms/internal/urel"
)

// fakeCatalog serves fixed schemas for planner tests.
type fakeCatalog struct {
	tables map[string]*schema.Schema
	// uncertain marks tables as U-relations.
	uncertain map[string]bool
}

func (c *fakeCatalog) TableSchema(name string) (*schema.Schema, error) {
	s, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return s, nil
}

func (c *fakeCatalog) TableRel(name string) (*urel.Rel, error) {
	s, err := c.TableSchema(name)
	if err != nil {
		return nil, err
	}
	return urel.New(s), nil
}

func (c *fakeCatalog) TableCertain(name string) (bool, error) {
	if _, err := c.TableSchema(name); err != nil {
		return false, err
	}
	return !c.uncertain[strings.ToLower(name)], nil
}

func testCatalog() *fakeCatalog {
	return &fakeCatalog{
		tables: map[string]*schema.Schema{
			"r": schema.New(
				schema.Column{Name: "a", Kind: types.KindInt},
				schema.Column{Name: "b", Kind: types.KindInt},
			),
			"s": schema.New(
				schema.Column{Name: "b", Kind: types.KindInt},
				schema.Column{Name: "c", Kind: types.KindText},
			),
			"u": schema.New(
				schema.Column{Name: "a", Kind: types.KindInt},
				schema.Column{Name: "p", Kind: types.KindFloat},
			),
		},
		uncertain: map[string]bool{"u": true},
	}
}

func buildQuery(t *testing.T, src string) Node {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n, err := Build(st.(*sql.QueryStmt).Query, testCatalog())
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	return n
}

func buildErr(t *testing.T, src string) error {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = Build(st.(*sql.QueryStmt).Query, testCatalog())
	if err == nil {
		t.Fatalf("build %q: expected error", src)
	}
	return err
}

func TestEquiJoinBecomesHashJoin(t *testing.T) {
	n := buildQuery(t, "select r.a, s.c from r, s where r.b = s.b")
	out := Explain(n)
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("expected HashJoin:\n%s", out)
	}
	if strings.Contains(out, "Product") {
		t.Errorf("no Product expected:\n%s", out)
	}
}

func TestNonEquiJoinFallsBackToProduct(t *testing.T) {
	n := buildQuery(t, "select r.a from r, s where r.b < s.b")
	out := Explain(n)
	if !strings.Contains(out, "Product") {
		t.Errorf("expected Product:\n%s", out)
	}
	if !strings.Contains(out, "Filter") {
		t.Errorf("expected residual Filter:\n%s", out)
	}
}

func TestSingleTablePredicatePushdown(t *testing.T) {
	n := buildQuery(t, "select r.a from r, s where r.b = s.b and r.a > 3")
	out := Explain(n)
	// The r.a > 3 filter must sit below the join, directly over the
	// scan of r.
	idxFilter := strings.Index(out, "Filter")
	idxJoin := strings.Index(out, "HashJoin")
	if idxFilter < 0 || idxJoin < 0 || idxFilter < idxJoin {
		t.Errorf("pushed filter should appear under the join:\n%s", out)
	}
}

func TestCertaintyPropagation(t *testing.T) {
	if n := buildQuery(t, "select a from r"); !n.Certain() {
		t.Error("select over certain table is certain")
	}
	if n := buildQuery(t, "select a from u"); n.Certain() {
		t.Error("select over U-relation is uncertain")
	}
	if n := buildQuery(t, "select a, conf() from u group by a"); !n.Certain() {
		t.Error("conf() output is t-certain")
	}
	if n := buildQuery(t, "select a, tconf() from u"); !n.Certain() {
		t.Error("tconf() output is t-certain")
	}
	if n := buildQuery(t, "select possible a from u"); !n.Certain() {
		t.Error("possible output is t-certain")
	}
	if n := buildQuery(t, "repair key a in r"); n.Certain() {
		t.Error("repair key output is uncertain")
	}
	if n := buildQuery(t, "pick tuples from r"); n.Certain() {
		t.Error("pick tuples output is uncertain")
	}
	if n := buildQuery(t, "select r.a from r, u where r.a = u.a"); n.Certain() {
		t.Error("join with U-relation is uncertain")
	}
}

func TestPlanRestrictions(t *testing.T) {
	cases := map[string]string{
		"select sum(a) from u":                                "not supported on uncertain", // caught at exec; plan allows
		"select distinct a from u":                            "DISTINCT",
		"repair key a in u":                                   "t-certain",
		"pick tuples from u":                                  "t-certain",
		"select a from u union select a from u":               "UNION",
		"select a from r where sum(a) > 1":                    "aggregates",
		"select a, tconf() from u group by a":                 "tconf",
		"select tconf(), conf() from u":                       "tconf",
		"select possible a, conf() from u group by a":         "POSSIBLE",
		"select a from r where a in (select a, p from u)":     "one column",
		"select a from r where a not in (select a from u)":    "positively",
		"select argmax(a, p), argmax(p, a) from u group by a": "argmax",
		"select b from r group by a":                          "GROUP BY",
		"select a from r order by 99":                         "out of range",
		"select zzz from r":                                   "unknown column",
		"select a from nope":                                  "no table",
	}
	for src, want := range cases {
		if src == "select sum(a) from u" {
			continue // runtime-enforced, covered in db tests
		}
		err := buildErr(t, src)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Build(%q) error %q should mention %q", src, err, want)
		}
	}
}

func TestAggregatePlanShape(t *testing.T) {
	n := buildQuery(t, "select a, conf() from u group by a order by a")
	out := Explain(n)
	if !strings.Contains(out, "Aggregate") || !strings.Contains(out, "aggs=[conf]") {
		t.Errorf("aggregate plan:\n%s", out)
	}
	if !strings.Contains(out, "Sort") {
		t.Errorf("order by should plan a sort:\n%s", out)
	}
}

func TestHiddenSortColumnProjection(t *testing.T) {
	// ORDER BY a group-by expression that is not projected must add a
	// hidden column and strip it afterwards.
	n := buildQuery(t, "select conf() from u group by a order by a")
	if n.Sch().Len() != 1 {
		t.Errorf("hidden sort column leaked: %v", n.Sch())
	}
	out := Explain(n)
	if !strings.Contains(out, "Project") || !strings.Contains(out, "Sort") {
		t.Errorf("expected Sort+Project:\n%s", out)
	}
}

func TestOrderByAggregateNotProjected(t *testing.T) {
	n := buildQuery(t, "select a from r group by a order by count(*) desc")
	if n.Sch().Len() != 1 {
		t.Errorf("hidden agg column leaked: %v", n.Sch())
	}
}

func TestCompileStandalone(t *testing.T) {
	sch := schema.New(schema.Column{Name: "x", Kind: types.KindInt})
	st, _ := sql.Parse("select x + 1 from r")
	item := st.(*sql.QueryStmt).Query.(*sql.Select).Items[0].Expr
	c, err := Compile(item, sch)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Eval(&EvalCtx{}, schema.Tuple{types.NewInt(41)})
	if err != nil || v.Int() != 42 {
		t.Errorf("%v %v", v, err)
	}
	// Aggregates rejected by standalone Compile.
	st, _ = sql.Parse("select sum(x) from r")
	if _, err := Compile(st.(*sql.QueryStmt).Query.(*sql.Select).Items[0].Expr, sch); err == nil {
		t.Error("aggregate should be rejected")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "bc", false},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%b%", "abc", true},
		{"abc", "abc", true},
		{"", "", true},
		{"", "x", false},
		{"%%x%%", "needle x haystack", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q,%q)=%v want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	st, _ := sql.Parse("select a + b, a + b, b + a from r")
	items := st.(*sql.QueryStmt).Query.(*sql.Select).Items
	if ExprString(items[0].Expr) != ExprString(items[1].Expr) {
		t.Error("identical expressions must have identical strings")
	}
	if ExprString(items[0].Expr) == ExprString(items[2].Expr) {
		t.Error("a+b and b+a differ syntactically")
	}
}
