package plan

import (
	"fmt"
	"strings"
)

// Explain renders a plan tree as an indented outline, used by the
// shell's EXPLAIN and by planner tests asserting on plan shapes.
func Explain(n Node) string {
	return ExplainFunc(n, nil)
}

// ExplainFunc renders a plan tree like Explain, appending annot(node)
// to each operator's line when annot is non-nil and returns a
// non-empty string — how EXPLAIN ANALYZE attaches live execution stats
// to the static outline without the plan package knowing about traces.
func ExplainFunc(n Node, annot func(Node) string) string {
	var b strings.Builder
	explain(&b, n, 0, annot)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int, annot func(Node) string) {
	indent := strings.Repeat("  ", depth)
	certainty := "uncertain"
	if n.Certain() {
		certainty = "certain"
	}
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(b, "%s%s [%s] %s", indent, OpName(n), certainty, fmt.Sprintf(format, args...))
		if annot != nil {
			if a := annot(n); a != "" {
				fmt.Fprintf(b, " %s", a)
			}
		}
		b.WriteByte('\n')
	}
	switch n := n.(type) {
	case *Scan:
		if n.EstRows > 0 {
			line("table=%s alias=%s cols=%d est=%d", n.Table, n.Alias, n.Sch().Len(), n.EstRows)
		} else {
			line("table=%s alias=%s cols=%d", n.Table, n.Alias, n.Sch().Len())
		}
	case *Dual:
		line("")
	case *Rename:
		line("as=%s", n.sch.Cols[0].Rel)
	case *Product:
		line("")
	case *HashJoin:
		detail := fmt.Sprintf("lkeys=%v rkeys=%v", n.LKeys, n.RKeys)
		if n.LEst > 0 || n.REst > 0 {
			side := "right"
			if n.BuildLeft {
				side = "left"
			}
			detail += fmt.Sprintf(" lest=%d rest=%d build=%s", n.LEst, n.REst, side)
		}
		line("%s", detail)
	case *Filter:
		detail := ""
		if n.Src != nil {
			detail = "pred=" + ExprString(n.Src)
		}
		if n.Pushed {
			detail += " pushed"
		}
		line("%s", detail)
	case *SemiJoinIn:
		line("")
	case *Project:
		line("items=%d tconf=%v", len(n.Items), n.HasTconf)
	case *Aggregate:
		names := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			names[i] = aggName(a.Kind)
		}
		line("groupby=%d aggs=%v", len(n.GroupBy), names)
	case *RepairKey:
		line("keys=%v weighted=%v", n.Keys, n.Weight != nil)
	case *PickTuples:
		line("independently prob=%v", n.Prob != nil)
	case *UnionAll:
		line("")
	case *Distinct:
		line("")
	case *Possible:
		line("")
	case *Sort:
		line("keys=%d", len(n.Keys))
	case *Limit:
		line("n=%d offset=%d", n.N, n.Offset)
	case *Number:
		line("col=%s", n.sch.Cols[n.sch.Len()-1].Name)
	case *Remap:
		line("cols=%v", n.Cols)
	default:
		line("?")
	}
	for _, c := range Children(n) {
		explain(b, c, depth+1, annot)
	}
}

// Children returns a node's plan inputs in explain order, letting
// callers outside the package (the trace renderer, the bench trace
// exporter) walk plan trees without enumerating node types themselves.
func Children(n Node) []Node {
	switch n := n.(type) {
	case *Rename:
		return []Node{n.In}
	case *Product:
		return []Node{n.L, n.R}
	case *HashJoin:
		return []Node{n.L, n.R}
	case *Filter:
		return []Node{n.In}
	case *SemiJoinIn:
		return []Node{n.In, n.Sub}
	case *Project:
		return []Node{n.In}
	case *Aggregate:
		return []Node{n.In}
	case *RepairKey:
		return []Node{n.In}
	case *PickTuples:
		return []Node{n.In}
	case *UnionAll:
		return []Node{n.L, n.R}
	case *Distinct:
		return []Node{n.In}
	case *Possible:
		return []Node{n.In}
	case *Sort:
		return []Node{n.In}
	case *Limit:
		return []Node{n.In}
	case *Number:
		return []Node{n.In}
	case *Remap:
		return []Node{n.In}
	default:
		return nil
	}
}

// OpName is the operator's display name in explain outlines and
// traces.
func OpName(n Node) string {
	switch n.(type) {
	case *Scan:
		return "Scan"
	case *Dual:
		return "Dual"
	case *Rename:
		return "Rename"
	case *Product:
		return "Product"
	case *HashJoin:
		return "HashJoin"
	case *Filter:
		return "Filter"
	case *SemiJoinIn:
		return "SemiJoinIn"
	case *Project:
		return "Project"
	case *Aggregate:
		return "Aggregate"
	case *RepairKey:
		return "RepairKey"
	case *PickTuples:
		return "PickTuples"
	case *UnionAll:
		return "UnionAll"
	case *Distinct:
		return "Distinct"
	case *Possible:
		return "Possible"
	case *Sort:
		return "Sort"
	case *Limit:
		return "Limit"
	case *Number:
		return "Number"
	case *Remap:
		return "Remap"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// PipelineBreaker reports whether the operator needs its whole input
// before producing any output. The streaming executor materialises
// breaker inputs behind an explicit boundary; everything else pulls
// batches end to end. Sort, aggregation, duplicate elimination,
// possible (lineage grouping), and the uncertainty-introducing
// repair-key / pick-tuples operators break the pipeline; scans,
// filters, projections, joins (probe side), unions, and limit stream.
func PipelineBreaker(n Node) bool {
	switch n.(type) {
	case *Sort, *Aggregate, *Distinct, *Possible, *RepairKey, *PickTuples:
		return true
	default:
		return false
	}
}

func aggName(k AggKind) string {
	switch k {
	case AggConf:
		return "conf"
	case AggAconf:
		return "aconf"
	case AggESum:
		return "esum"
	case AggECount:
		return "ecount"
	case AggArgmax:
		return "argmax"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggCountStar:
		return "count(*)"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg%d", k)
	}
}
