package plan

import (
	"fmt"
	"strings"
)

// Explain renders a plan tree as an indented outline, used by the
// shell's EXPLAIN and by planner tests asserting on plan shapes.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	certainty := "uncertain"
	if n.Certain() {
		certainty = "certain"
	}
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(b, "%s%s [%s] %s\n", indent, opName(n), certainty, fmt.Sprintf(format, args...))
	}
	switch n := n.(type) {
	case *Scan:
		line("table=%s alias=%s cols=%d", n.Table, n.Alias, n.Sch().Len())
	case *Dual:
		line("")
	case *Rename:
		line("as=%s", n.sch.Cols[0].Rel)
		explain(b, n.In, depth+1)
	case *Product:
		line("")
		explain(b, n.L, depth+1)
		explain(b, n.R, depth+1)
	case *HashJoin:
		line("lkeys=%v rkeys=%v", n.LKeys, n.RKeys)
		explain(b, n.L, depth+1)
		explain(b, n.R, depth+1)
	case *Filter:
		line("")
		explain(b, n.In, depth+1)
	case *SemiJoinIn:
		line("")
		explain(b, n.In, depth+1)
		explain(b, n.Sub, depth+1)
	case *Project:
		line("items=%d tconf=%v", len(n.Items), n.HasTconf)
		explain(b, n.In, depth+1)
	case *Aggregate:
		names := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			names[i] = aggName(a.Kind)
		}
		line("groupby=%d aggs=%v", len(n.GroupBy), names)
		explain(b, n.In, depth+1)
	case *RepairKey:
		line("keys=%v weighted=%v", n.Keys, n.Weight != nil)
		explain(b, n.In, depth+1)
	case *PickTuples:
		line("independently prob=%v", n.Prob != nil)
		explain(b, n.In, depth+1)
	case *UnionAll:
		line("")
		explain(b, n.L, depth+1)
		explain(b, n.R, depth+1)
	case *Distinct:
		line("")
		explain(b, n.In, depth+1)
	case *Possible:
		line("")
		explain(b, n.In, depth+1)
	case *Sort:
		line("keys=%d", len(n.Keys))
		explain(b, n.In, depth+1)
	case *Limit:
		line("n=%d offset=%d", n.N, n.Offset)
		explain(b, n.In, depth+1)
	default:
		line("?")
	}
}

func opName(n Node) string {
	switch n.(type) {
	case *Scan:
		return "Scan"
	case *Dual:
		return "Dual"
	case *Rename:
		return "Rename"
	case *Product:
		return "Product"
	case *HashJoin:
		return "HashJoin"
	case *Filter:
		return "Filter"
	case *SemiJoinIn:
		return "SemiJoinIn"
	case *Project:
		return "Project"
	case *Aggregate:
		return "Aggregate"
	case *RepairKey:
		return "RepairKey"
	case *PickTuples:
		return "PickTuples"
	case *UnionAll:
		return "UnionAll"
	case *Distinct:
		return "Distinct"
	case *Possible:
		return "Possible"
	case *Sort:
		return "Sort"
	case *Limit:
		return "Limit"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// PipelineBreaker reports whether the operator needs its whole input
// before producing any output. The streaming executor materialises
// breaker inputs behind an explicit boundary; everything else pulls
// batches end to end. Sort, aggregation, duplicate elimination,
// possible (lineage grouping), and the uncertainty-introducing
// repair-key / pick-tuples operators break the pipeline; scans,
// filters, projections, joins (probe side), unions, and limit stream.
func PipelineBreaker(n Node) bool {
	switch n.(type) {
	case *Sort, *Aggregate, *Distinct, *Possible, *RepairKey, *PickTuples:
		return true
	default:
		return false
	}
}

func aggName(k AggKind) string {
	switch k {
	case AggConf:
		return "conf"
	case AggAconf:
		return "aconf"
	case AggESum:
		return "esum"
	case AggECount:
		return "ecount"
	case AggArgmax:
		return "argmax"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggCountStar:
		return "count(*)"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg%d", k)
	}
}
