// Package plan translates parsed MayBMS queries into a tree of logical
// operators over U-relations, implementing the parsimonious
// translation of positive relational algebra of Antova et al. (ICDE
// 2008): selections filter data columns, projections keep condition
// columns, joins conjoin conditions and drop inconsistent
// combinations, and the uncertainty-introducing constructs repair-key
// and pick-tuples allocate fresh world-set variables.
package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
	"maybms/internal/urel"
	"maybms/internal/ws"
)

// Catalog resolves table names during planning and execution.
type Catalog interface {
	// TableSchema returns the schema of a named table.
	TableSchema(name string) (*schema.Schema, error)
	// TableRel materialises the named table as a U-relation.
	TableRel(name string) (*urel.Rel, error)
	// TableCertain reports whether the named table is t-certain.
	TableCertain(name string) (bool, error)
}

// NodeRunner executes a planned subtree, returning its result. The
// executor provides it so compiled expressions can run subqueries.
type NodeRunner func(n Node) (*urel.Rel, error)

// EvalCtx carries the runtime state expression evaluation needs.
type EvalCtx struct {
	Store  *ws.Store
	Run    NodeRunner
	Rng    *rand.Rand
	Params map[string]types.Value // reserved for future use
	// Args holds the literal values extracted by statement
	// normalization, indexed by sql.Param.Idx. A cached plan is the
	// compiled normalized query; each execution supplies its own
	// argument vector here.
	Args []types.Value
}

// Compiled is a scalar expression bound to an input schema.
type Compiled struct {
	eval func(ctx *EvalCtx, row schema.Tuple) (types.Value, error)
	kind types.Kind
	// shareable marks an expression whose evaluation closures keep no
	// mutable state, so one Compiled may be evaluated concurrently from
	// several goroutines. Subquery expressions (IN (...), EXISTS)
	// memoise their subquery's result on first evaluation and are not
	// shareable.
	shareable bool
}

// Shareable reports whether this expression may be evaluated
// concurrently from several goroutines sharing the one Compiled. The
// parallel executor refuses to partition a pipeline whose expressions
// are not shareable.
func (c *Compiled) Shareable() bool { return c.shareable }

// Eval evaluates the expression on a row.
func (c *Compiled) Eval(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
	return c.eval(ctx, row)
}

// Kind returns the statically inferred result type.
func (c *Compiled) Kind() types.Kind { return c.kind }

// Compile binds expression e to the given input schema. Aggregate
// calls are rejected here; the aggregation operator compiles its
// arguments separately.
func Compile(e sql.Expr, sch *schema.Schema) (*Compiled, error) {
	return compile(e, sch, nil)
}

// compile allows subquery expressions; planSub plans a query appearing
// inside the expression. It stamps the result's shareability from the
// source AST — the closures built below keep mutable state only for
// subquery memoisation.
func compile(e sql.Expr, sch *schema.Schema, planSub func(q sql.Query) (Node, error)) (*Compiled, error) {
	c, err := compile1(e, sch, planSub)
	if err != nil {
		return nil, err
	}
	c.shareable = exprShareable(e)
	return c, nil
}

// exprShareable reports whether a compiled form of e keeps no mutable
// evaluation state (see Compiled.Shareable). Unknown forms are
// conservatively unshareable.
func exprShareable(e sql.Expr) bool {
	switch e := e.(type) {
	case nil, sql.Lit, sql.ColRef, sql.Param:
		return true
	case *sql.Unary:
		return exprShareable(e.E)
	case *sql.Binary:
		return exprShareable(e.L) && exprShareable(e.R)
	case *sql.IsNull:
		return exprShareable(e.E)
	case *sql.Between:
		return exprShareable(e.E) && exprShareable(e.Lo) && exprShareable(e.Hi)
	case *sql.Cast:
		return exprShareable(e.E)
	case *sql.InList:
		if !exprShareable(e.E) {
			return false
		}
		for _, x := range e.List {
			if !exprShareable(x) {
				return false
			}
		}
		return true
	case *sql.FuncCall:
		for _, a := range e.Args {
			if !exprShareable(a) {
				return false
			}
		}
		return true
	case *sql.InSubquery, *sql.Exists:
		// Memoise their subquery result lazily in the closure.
		return false
	default:
		return false
	}
}

func compile1(e sql.Expr, sch *schema.Schema, planSub func(q sql.Query) (Node, error)) (*Compiled, error) {
	switch e := e.(type) {
	case sql.Lit:
		v := e.Val
		return &Compiled{
			eval: func(*EvalCtx, schema.Tuple) (types.Value, error) { return v, nil },
			kind: v.Kind(),
		}, nil

	case sql.Param:
		idx := e.Idx
		return &Compiled{
			kind: e.Kind,
			eval: func(ctx *EvalCtx, _ schema.Tuple) (types.Value, error) {
				if idx >= len(ctx.Args) {
					return types.Null(), fmt.Errorf("plan: missing argument %d for parameterized plan", idx)
				}
				return ctx.Args[idx], nil
			},
		}, nil

	case sql.ColRef:
		idx, err := sch.Resolve(e.Rel, e.Name)
		if err != nil {
			return nil, err
		}
		return &Compiled{
			eval: func(_ *EvalCtx, row schema.Tuple) (types.Value, error) { return row[idx], nil },
			kind: sch.Cols[idx].Kind,
		}, nil

	case *sql.Unary:
		in, err := compile(e.E, sch, planSub)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return &Compiled{kind: in.kind, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
				v, err := in.eval(ctx, row)
				if err != nil {
					return types.Null(), err
				}
				return types.Neg(v)
			}}, nil
		case "not":
			return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
				v, err := in.eval(ctx, row)
				if err != nil {
					return types.Null(), err
				}
				if v.IsNull() {
					return types.Null(), nil
				}
				return types.NewBool(!v.Truth()), nil
			}}, nil
		default:
			return nil, fmt.Errorf("plan: unknown unary operator %q", e.Op)
		}

	case *sql.Binary:
		return compileBinary(e, sch, planSub)

	case *sql.IsNull:
		in, err := compile(e.E, sch, planSub)
		if err != nil {
			return nil, err
		}
		neg := e.Negate
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := in.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			return types.NewBool(v.IsNull() != neg), nil
		}}, nil

	case *sql.Between:
		lo, err := compile(&sql.Binary{Op: ">=", L: e.E, R: e.Lo}, sch, planSub)
		if err != nil {
			return nil, err
		}
		hi, err := compile(&sql.Binary{Op: "<=", L: e.E, R: e.Hi}, sch, planSub)
		if err != nil {
			return nil, err
		}
		neg := e.Negate
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			a, err := lo.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			b, err := hi.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			return types.NewBool((a.Truth() && b.Truth()) != neg), nil
		}}, nil

	case *sql.Cast:
		in, err := compile(e.E, sch, planSub)
		if err != nil {
			return nil, err
		}
		k := e.Kind
		return &Compiled{kind: k, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := in.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			return v.Cast(k)
		}}, nil

	case *sql.InList:
		in, err := compile(e.E, sch, planSub)
		if err != nil {
			return nil, err
		}
		items := make([]*Compiled, len(e.List))
		for i, x := range e.List {
			c, err := compile(x, sch, planSub)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		neg := e.Negate
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := in.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			anyNull := false
			for _, it := range items {
				w, err := it.eval(ctx, row)
				if err != nil {
					return types.Null(), err
				}
				if w.IsNull() {
					anyNull = true
					continue
				}
				if v.Equal(w) {
					return types.NewBool(!neg), nil
				}
			}
			if anyNull {
				return types.Null(), nil
			}
			return types.NewBool(neg), nil
		}}, nil

	case *sql.InSubquery:
		if planSub == nil {
			return nil, fmt.Errorf("plan: subquery not allowed in this context")
		}
		sub, err := planSub(e.Query)
		if err != nil {
			return nil, err
		}
		if !sub.Certain() {
			return nil, fmt.Errorf("plan: uncertain subquery in IN must occur positively as a top-level WHERE conjunct")
		}
		if sub.Sch().Len() != 1 {
			return nil, fmt.Errorf("plan: IN subquery must return exactly one column, got %d", sub.Sch().Len())
		}
		in, err := compile(e.E, sch, planSub)
		if err != nil {
			return nil, err
		}
		neg := e.Negate
		var cache map[string]bool // lazily materialised value set
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			if cache == nil {
				rel, err := ctx.Run(sub)
				if err != nil {
					return types.Null(), err
				}
				cache = make(map[string]bool, rel.Len())
				for _, t := range rel.Tuples {
					cache[t.Data.Key()] = true
				}
			}
			v, err := in.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			hit := cache[schema.Tuple{v}.Key()]
			return types.NewBool(hit != neg), nil
		}}, nil

	case *sql.Exists:
		if planSub == nil {
			return nil, fmt.Errorf("plan: subquery not allowed in this context")
		}
		sub, err := planSub(e.Query)
		if err != nil {
			return nil, err
		}
		if !sub.Certain() {
			return nil, fmt.Errorf("plan: EXISTS requires a t-certain subquery; use conf() or possible instead")
		}
		neg := e.Negate
		known := false
		var result bool
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			if !known {
				rel, err := ctx.Run(sub)
				if err != nil {
					return types.Null(), err
				}
				result = rel.Len() > 0
				known = true
			}
			return types.NewBool(result != neg), nil
		}}, nil

	case *sql.FuncCall:
		if sql.AggregateNames[e.Name] {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", e.Name)
		}
		return compileScalarFunc(e, sch, planSub)

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func compileBinary(e *sql.Binary, sch *schema.Schema, planSub func(q sql.Query) (Node, error)) (*Compiled, error) {
	l, err := compile(e.L, sch, planSub)
	if err != nil {
		return nil, err
	}
	r, err := compile(e.R, sch, planSub)
	if err != nil {
		return nil, err
	}
	op := e.Op
	switch op {
	case "and", "or":
		isAnd := op == "and"
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			a, err := l.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			// Three-valued logic with short-circuit.
			if !a.IsNull() {
				if isAnd && !a.Truth() {
					return types.NewBool(false), nil
				}
				if !isAnd && a.Truth() {
					return types.NewBool(true), nil
				}
			}
			b, err := r.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			if b.IsNull() || a.IsNull() {
				if !b.IsNull() {
					if isAnd && !b.Truth() {
						return types.NewBool(false), nil
					}
					if !isAnd && b.Truth() {
						return types.NewBool(true), nil
					}
				}
				return types.Null(), nil
			}
			if isAnd {
				return types.NewBool(a.Truth() && b.Truth()), nil
			}
			return types.NewBool(a.Truth() || b.Truth()), nil
		}}, nil
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			a, err := l.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			b, err := r.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			return types.CompareOp(op, a, b)
		}}, nil
	case "like":
		return &Compiled{kind: types.KindBool, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			a, err := l.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			b, err := r.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			if a.Kind() != types.KindText || b.Kind() != types.KindText {
				return types.Null(), fmt.Errorf("LIKE requires text operands")
			}
			return types.NewBool(likeMatch(b.Text(), a.Text())), nil
		}}, nil
	case "+", "-", "*", "/", "%":
		kind := types.KindInt
		if l.kind == types.KindFloat || r.kind == types.KindFloat {
			kind = types.KindFloat
		}
		if op == "+" && l.kind == types.KindText {
			kind = types.KindText
		}
		fn := map[string]func(a, b types.Value) (types.Value, error){
			"+": types.Add, "-": types.Sub, "*": types.Mul, "/": types.Div, "%": types.Mod,
		}[op]
		return &Compiled{kind: kind, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			a, err := l.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			b, err := r.eval(ctx, row)
			if err != nil {
				return types.Null(), err
			}
			return fn(a, b)
		}}, nil
	default:
		return nil, fmt.Errorf("plan: unknown operator %q", op)
	}
}

// compileScalarFunc handles the non-aggregate built-in functions.
func compileScalarFunc(e *sql.FuncCall, sch *schema.Schema, planSub func(q sql.Query) (Node, error)) (*Compiled, error) {
	args := make([]*Compiled, len(e.Args))
	for i, a := range e.Args {
		c, err := compile(a, sch, planSub)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("plan: %s expects %d argument(s), got %d", e.Name, n, len(args))
		}
		return nil
	}
	switch e.Name {
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return &Compiled{kind: args[0].kind, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := args[0].eval(ctx, row)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					return types.NewInt(-v.Int()), nil
				}
				return v, nil
			case types.KindFloat:
				if v.Float() < 0 {
					return types.NewFloat(-v.Float()), nil
				}
				return v, nil
			}
			return types.Null(), fmt.Errorf("abs requires a numeric argument")
		}}, nil
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("plan: coalesce needs at least one argument")
		}
		kind := args[0].kind
		return &Compiled{kind: kind, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			for _, a := range args {
				v, err := a.eval(ctx, row)
				if err != nil {
					return types.Null(), err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null(), nil
		}}, nil
	case "lower", "upper":
		if err := need(1); err != nil {
			return nil, err
		}
		toUpper := e.Name == "upper"
		return &Compiled{kind: types.KindText, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := args[0].eval(ctx, row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindText {
				return types.Null(), fmt.Errorf("%s requires a text argument", e.Name)
			}
			if toUpper {
				return types.NewText(strings.ToUpper(v.Text())), nil
			}
			return types.NewText(strings.ToLower(v.Text())), nil
		}}, nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		return &Compiled{kind: types.KindInt, eval: func(ctx *EvalCtx, row schema.Tuple) (types.Value, error) {
			v, err := args[0].eval(ctx, row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindText {
				return types.Null(), fmt.Errorf("length requires a text argument")
			}
			return types.NewInt(int64(len(v.Text()))), nil
		}}, nil
	default:
		return nil, fmt.Errorf("plan: unknown function %q", e.Name)
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	// Dynamic programming over pattern/string positions.
	p, n := []rune(pattern), []rune(s)
	memo := make(map[[2]int]bool)
	var match func(i, j int) bool
	match = func(i, j int) bool {
		if i == len(p) {
			return j == len(n)
		}
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		var res bool
		switch p[i] {
		case '%':
			res = match(i+1, j) || (j < len(n) && match(i, j+1))
		case '_':
			res = j < len(n) && match(i+1, j+1)
		default:
			res = j < len(n) && p[i] == n[j] && match(i+1, j+1)
		}
		memo[key] = res
		return res
	}
	return match(0, 0)
}

// ExprString renders an expression canonically; used to match GROUP BY
// expressions against SELECT items.
func ExprString(e sql.Expr) string {
	switch e := e.(type) {
	case sql.Lit:
		return "lit:" + e.Val.SQLLiteral()
	case sql.Param:
		return fmt.Sprintf("param:%d", e.Idx)
	case sql.ColRef:
		return "col:" + strings.ToLower(e.Rel) + "." + strings.ToLower(e.Name)
	case *sql.Unary:
		return "(" + e.Op + " " + ExprString(e.E) + ")"
	case *sql.Binary:
		return "(" + ExprString(e.L) + " " + e.Op + " " + ExprString(e.R) + ")"
	case *sql.FuncCall:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = ExprString(a)
		}
		star := ""
		if e.Star {
			star = "*"
		}
		return e.Name + "(" + star + strings.Join(parts, ",") + ")"
	case *sql.IsNull:
		return fmt.Sprintf("(%s is null neg=%v)", ExprString(e.E), e.Negate)
	case *sql.Between:
		return fmt.Sprintf("(%s between %s and %s neg=%v)", ExprString(e.E), ExprString(e.Lo), ExprString(e.Hi), e.Negate)
	case *sql.Cast:
		return fmt.Sprintf("cast(%s as %s)", ExprString(e.E), e.Kind)
	case *sql.InList:
		parts := make([]string, len(e.List))
		for i, a := range e.List {
			parts[i] = ExprString(a)
		}
		sort.Strings(parts)
		return fmt.Sprintf("(%s in [%s] neg=%v)", ExprString(e.E), strings.Join(parts, ","), e.Negate)
	default:
		return fmt.Sprintf("%T@%p", e, e)
	}
}
