package plan

import (
	"fmt"
	"strings"
	"testing"

	"maybms/internal/schema"
	"maybms/internal/sql"
	"maybms/internal/types"
)

// testEst is a fixed table-cardinality source for optimizer tests.
type testEst map[string]int

func (e testEst) TableLen(name string) (int, error) {
	n, ok := e[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("no table %q", name)
	}
	return n, nil
}

// joinCatalog extends the shared test catalog with a three-table
// equi-join chain of skewed sizes.
func joinCatalog() *fakeCatalog {
	c := testCatalog()
	c.tables["big"] = schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "x", Kind: types.KindInt},
	)
	c.tables["mid"] = schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "y", Kind: types.KindInt},
	)
	c.tables["small"] = schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "z", Kind: types.KindInt},
	)
	return c
}

func buildOn(t *testing.T, cat *fakeCatalog, src string) Node {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n, err := Build(st.(*sql.QueryStmt).Query, cat)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	return n
}

// TestPushdownThroughProjectAndJoin sinks an outer filter over a FROM
// subquery through the subquery's projection and then to the correct
// side of the join inside it.
func TestPushdownThroughProjectAndJoin(t *testing.T) {
	n := buildOn(t, testCatalog(),
		`select x.a c0 from (select r.a a, s.c c from r, s where r.b = s.b) x where x.c = 'y'`)
	n = Optimize(n, OptOptions{})
	out := Explain(n)
	// The filter must have moved below the join, onto the s side, and
	// be flagged as pushed.
	joinAt := strings.Index(out, "HashJoin")
	filterAt := strings.Index(out, "pushed")
	if joinAt < 0 || filterAt < 0 {
		t.Fatalf("expected a HashJoin and a pushed filter, got:\n%s", out)
	}
	if filterAt < joinAt {
		t.Errorf("pushed filter should render below the join, got:\n%s", out)
	}
	if !strings.Contains(out, "pred=") {
		t.Errorf("pushed filter should carry its source predicate, got:\n%s", out)
	}
}

// TestPushdownConvertsProductToHashJoin: when sinking exposes an
// equality between the two sides of a cross product, the product
// becomes a hash join.
func TestPushdownConvertsProductToHashJoin(t *testing.T) {
	n := buildOn(t, testCatalog(),
		`select x.a c0 from (select r.a a, s.b b2 from r, s) x where x.a = x.b2`)
	n = Optimize(n, OptOptions{})
	out := Explain(n)
	if strings.Contains(out, "Product") {
		t.Errorf("equi-filter over a product should convert to a hash join, got:\n%s", out)
	}
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("expected a HashJoin, got:\n%s", out)
	}
}

// TestPushdownKeepsSubqueryPredicatesPut: predicates containing
// subqueries must never move — their evaluation can have side effects
// (repair-key under an aggregate allocates world-set variables).
func TestPushdownKeepsSubqueryPredicatesPut(t *testing.T) {
	n := buildOn(t, testCatalog(),
		`select x.a c0 from (select r.a a, s.c c from r, s where r.b = s.b) x where x.a in (select a from u)`)
	n = Optimize(n, OptOptions{})
	out := Explain(n)
	join := strings.Index(out, "HashJoin")
	semi := strings.Index(out, "SemiJoinIn")
	if semi < 0 {
		t.Skipf("IN-subquery planned without SemiJoinIn:\n%s", out)
	}
	if join >= 0 && semi > join {
		t.Errorf("IN-subquery predicate must stay above the join, got:\n%s", out)
	}
}

// TestReorderJoinsSmallestFirst: with skewed table sizes, the greedy
// order starts from the smallest input, and the order-restoration
// machinery (Number / Sort / Remap) wraps the region so emission order
// is preserved.
func TestReorderJoinsSmallestFirst(t *testing.T) {
	cat := joinCatalog()
	est := testEst{"big": 100000, "mid": 1000, "small": 10, "r": 100, "s": 100, "u": 100}
	n := buildOn(t, cat,
		`select count(*) c0 from big b, mid m, small s where b.id = m.id and m.id = s.id`)
	n = Optimize(n, OptOptions{Est: est})
	out := Explain(n)
	if !strings.Contains(out, "Remap") || !strings.Contains(out, "Number") {
		t.Fatalf("expected the reorder restoration operators, got:\n%s", out)
	}
	// The first (deepest-left) scan must now be the smallest table.
	first := strings.Index(out, "table=small")
	other := strings.Index(out, "table=big")
	if first < 0 || other < 0 || first > other {
		t.Errorf("smallest table should lead the join order, got:\n%s", out)
	}
	if !strings.Contains(out, "build=") {
		t.Errorf("expected build-side annotations on the joins, got:\n%s", out)
	}
}

// TestReorderRequiresSimpleLeaves: a join region containing a
// repair-key leaf must never be reordered — variable allocation order
// is observable.
func TestReorderRequiresSimpleLeaves(t *testing.T) {
	cat := joinCatalog()
	est := testEst{"big": 100000, "mid": 1000, "small": 10, "r": 100, "s": 100, "u": 100}
	n := buildOn(t, cat,
		`select count(*) c0 from big b, mid m, (repair key a in r weight by b) w
		 where b.id = m.id and m.id = w.a`)
	n = Optimize(n, OptOptions{Est: est})
	out := Explain(n)
	if strings.Contains(out, "Remap") {
		t.Errorf("region with a repair-key leaf must not be reordered, got:\n%s", out)
	}
}

// TestStampEstimates: with an estimator, scans carry row estimates and
// hash joins pick the smaller build side.
func TestStampEstimates(t *testing.T) {
	cat := joinCatalog()
	est := testEst{"big": 100000, "mid": 1000, "small": 10, "r": 100, "s": 100, "u": 100}
	n := buildOn(t, cat, `select count(*) c0 from big b, mid m where b.id = m.id`)
	n = Optimize(n, OptOptions{Est: est})
	out := Explain(n)
	if !strings.Contains(out, "est=100000") || !strings.Contains(out, "est=1000") {
		t.Errorf("scans should carry estimates, got:\n%s", out)
	}
	// big is on the left (FROM order), so the estimated-smaller left…
	// no: mid is right and smaller, so the default right build stands.
	if !strings.Contains(out, "lest=100000 rest=1000 build=right") {
		t.Errorf("expected right build on the smaller input, got:\n%s", out)
	}
	// Flipped FROM order: the smaller input lands on the left and the
	// build side flips with it.
	n = buildOn(t, cat, `select count(*) c0 from mid m, big b where b.id = m.id`)
	n = Optimize(n, OptOptions{Est: est})
	out = Explain(n)
	if !strings.Contains(out, "build=left") {
		t.Errorf("expected left build when the left input is smaller, got:\n%s", out)
	}
}

// TestFeedbackOverridesHeuristics: a trace-observed cardinality beats
// the heuristic estimate for the same scan chain.
func TestFeedbackOverridesHeuristics(t *testing.T) {
	cat := joinCatalog()
	est := testEst{"big": 100000, "mid": 1000, "small": 10, "r": 100, "s": 100, "u": 100}
	n := buildOn(t, cat, `select count(*) c0 from mid m, big b where b.id = m.id and b.x = 7`)
	n = Optimize(n, OptOptions{Est: est})
	// Heuristic: big shrinks to 100000/10 = 10000 > mid's 1000 → right
	// build. Feedback saying the filtered big chain is actually 5 rows
	// must flip the estimates.
	obs := ObserveChains(n, func(top Node) (int64, bool) { return 5, true })
	// Scan ordinals are deterministic per query shape: rebuild and
	// re-optimize with the observation in place.
	n2 := buildOn(t, cat, `select count(*) c0 from mid m, big b where b.id = m.id and b.x = 7`)
	var fb map[int]int64 = obs
	n2 = Optimize(n2, OptOptions{Est: est, Feedback: fb})
	out := Explain(n2)
	if !strings.Contains(out, "rest=5") {
		t.Errorf("feedback cardinality should replace the heuristic, got:\n%s", out)
	}
}

// TestCacheable: plans with memoising subquery state must not be
// cached; plain pipelines and repair-key roots classify correctly.
func TestCacheable(t *testing.T) {
	n := buildQuery(t, `select a c0 from r where b > 3`)
	if !Cacheable(Optimize(n, OptOptions{})) {
		t.Errorf("plain filtered scan should be cacheable")
	}
	n = buildQuery(t, `select a c0 from r where a in (select b from s)`)
	if Cacheable(Optimize(n, OptOptions{})) {
		t.Errorf("plan with an IN-subquery must not be cacheable")
	}
	n = buildQuery(t, `select a c0 from (repair key a in r weight by b) w`)
	if Cacheable(Optimize(n, OptOptions{})) {
		t.Errorf("repair-key plan must not be cacheable")
	}
}
