package maybms

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// confDB builds a database with a prebuilt uncertain table heavy
// enough that conf() queries do real work: nBlocks repair-key blocks
// of three alternatives each.
func confDB(nBlocks int) *DB {
	db := Open()
	db.MustExec(`create table base (k int, v int, w float)`)
	for k := 0; k < nBlocks; k++ {
		db.MustExec(fmt.Sprintf(
			`insert into base values (%d, 1, 5), (%d, 2, 3), (%d, 3, 2)`, k, k, k))
	}
	db.MustExec(`create table rep as repair key k in base weight by w`)
	return db
}

// confQuery is the read-only hot path: a self-join over the uncertain
// table followed by exact confidence computation.
const confQuery = `
	select conf() from rep r1, rep r2
	where r1.k + 1 = r2.k and r1.v = 1 and r2.v = 1`

// TestConcurrentQueryExec backs the "safe for concurrent use" claim
// with a stress mix of parallel reads (conf over the shared-lock
// path) and writes (DML behind the exclusive lock), meant to run
// under -race.
func TestConcurrentQueryExec(t *testing.T) {
	db := confDB(10)
	db.MustExec(`create table log (g int, i int)`)
	want, err := db.QueryFloat(confQuery)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					// Reader: exact confidence must be stable no matter
					// what the writers do to other tables.
					got, err := db.QueryFloat(confQuery)
					if err != nil {
						errs <- err
						return
					}
					if math.Abs(got-want) > 1e-12 {
						errs <- fmt.Errorf("conf drifted under concurrency: %v vs %v", got, want)
						return
					}
				} else {
					if _, err := db.Exec(fmt.Sprintf(
						`insert into log values (%d, %d)`, g, i)); err != nil {
						errs <- err
						return
					}
					if _, err := db.Exec(fmt.Sprintf(
						`update log set i = i + 0 where g = %d`, g)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	n, err := db.QueryFloat(`select count(*) from log`)
	if err != nil || int(n) != goroutines/2*rounds {
		t.Fatalf("writes lost: count=%v err=%v", n, err)
	}
}

// TestConcurrentAconf exercises the shared, internally locked Monte
// Carlo source from parallel readers (the path a plain rand.Rand
// would race on).
func TestConcurrentAconf(t *testing.T) {
	db := confDB(8)
	db.SetSeed(7)
	exact, err := db.QueryFloat(`select conf() from rep where v = 1`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				p, err := db.QueryFloat(`select aconf(0.2, 0.2) from rep where v = 1`)
				if err != nil {
					errs <- err
					return
				}
				// Karp-Luby gives a relative-error estimate, so values
				// slightly above 1 are legitimate near P=1; only gross
				// divergence indicates corruption of the shared source.
				if math.Abs(p-exact) > 0.5 {
					errs <- fmt.Errorf("aconf %v diverged from exact %v", p, exact)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// measureThroughput runs the conf workload from workers goroutines
// for roughly the given duration and reports queries/second. When
// serialise is set, every query additionally funnels through one
// mutex — the pre-RWMutex baseline.
func measureThroughput(tb testing.TB, db *DB, workers int, d time.Duration, serialise bool) float64 {
	var funnel sync.Mutex
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	deadline := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for time.Now().Before(deadline) {
				if serialise {
					funnel.Lock()
				}
				_, err := db.QueryFloat(confQuery)
				if serialise {
					funnel.Unlock()
				}
				if err != nil {
					tb.Error(err)
					return
				}
				local++
			}
			mu.Lock()
			count += int64(local)
			mu.Unlock()
		}()
	}
	start := time.Now()
	wg.Wait()
	return float64(count) / time.Since(start).Seconds()
}

// TestParallelConfThroughput is the acceptance check for the RWMutex
// refactor: read-only conf() queries from 8 parallel clients must
// beat the serialised-mutex baseline by more than 2x. It needs real
// parallelism, so it skips on small machines and under -race (see
// BenchmarkParallelConf* for the measurement form).
func TestParallelConfThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector skews the parallel/serial ratio")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	db := confDB(30)
	// Warm up once so first-use costs are off the clock.
	db.MustQuery(confQuery)
	serial := measureThroughput(t, db, 8, 600*time.Millisecond, true)
	parallel := measureThroughput(t, db, 8, 600*time.Millisecond, false)
	t.Logf("8 workers: parallel %.0f q/s vs serialised %.0f q/s (%.2fx)", parallel, serial, parallel/serial)
	if parallel <= 2*serial {
		t.Errorf("parallel reads %.0f q/s not > 2x serialised %.0f q/s", parallel, serial)
	}
}

// BenchmarkParallelConfRWMutex measures read-only conf() throughput
// with 8 workers sharing the engine's read lock.
func BenchmarkParallelConfRWMutex(b *testing.B) {
	benchmarkParallelConf(b, false)
}

// BenchmarkParallelConfSerialised is the baseline: the same workload
// funnelled through a single mutex, as the engine behaved before the
// RWMutex refactor.
func BenchmarkParallelConfSerialised(b *testing.B) {
	benchmarkParallelConf(b, true)
}

func benchmarkParallelConf(b *testing.B, serialise bool) {
	db := confDB(30)
	db.MustQuery(confQuery)
	var funnel sync.Mutex
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if serialise {
				funnel.Lock()
			}
			if _, err := db.QueryFloat(confQuery); err != nil {
				b.Error(err)
			}
			if serialise {
				funnel.Unlock()
			}
		}
	})
}
