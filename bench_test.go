package maybms

import (
	"fmt"
	"math/rand"
	"testing"

	"maybms/internal/conf/approx"
	"maybms/internal/conf/exact"
	"maybms/internal/conf/naive"
	"maybms/internal/conf/sprout"
	"maybms/internal/lineage"
	"maybms/internal/workload"
	"maybms/internal/ws"
)

// The benchmarks mirror the experiment index of DESIGN.md: one bench
// per table/figure the reproduction tracks. cmd/bench prints the
// corresponding human-readable tables; these testing.B targets measure
// the same code paths under the standard Go benchmark harness.

// figure1DB builds the paper's Figure 1 database.
func figure1DB() *DB {
	db := Open()
	db.MustExec(`
		create table ft (player text, init text, final text, p float);
		insert into ft values
			('Bryant','F','F',0.8), ('Bryant','F','SE',0.05), ('Bryant','F','SL',0.15),
			('Bryant','SE','F',0.1), ('Bryant','SE','SE',0.6), ('Bryant','SE','SL',0.3),
			('Bryant','SL','F',0.8), ('Bryant','SL','SL',0.2);
		create table states (player text, state text);
		insert into states values ('Bryant','F');
	`)
	return db
}

// BenchmarkE1RandomWalk measures the paper's Figure 1 / Section 3
// 3-step random-walk query composition (repair-key + join + conf).
func BenchmarkE1RandomWalk(b *testing.B) {
	db := figure1DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustExec(`drop table if exists ft2`)
		db.MustExec(`
			create table ft2 as
			select r1.player, r1.init, r2.final, conf() as p from
				(repair key player, init in ft weight by p) r1,
				(repair key player, init in ft weight by p) r2, states s
			where r1.player = s.player and r1.init = s.state
				and r1.final = r2.init and r1.player = r2.player
			group by r1.player, r1.init, r2.final`)
		db.MustQuery(`
			select r2.final as state, conf() as p from
				(repair key player, init in ft2 weight by p) r1,
				(repair key player, init in ft weight by p) r2
			where r1.final = r2.init and r1.player = r2.player
			group by r1.player, r2.final`)
	}
}

// e2DNFs pre-generates DNF instances at a variable-to-clause ratio.
func e2DNFs(ratio float64, n int) ([]lineage.DNF, *ws.Store) {
	rng := rand.New(rand.NewSource(2009))
	store := ws.NewStore()
	vars := int(ratio * 14)
	if vars < 1 {
		vars = 1
	}
	out := make([]lineage.DNF, n)
	for i := range out {
		out[i] = workload.RandomDNF(rng, store, workload.DNFConfig{
			Vars: vars, MaxDomain: 2, Clauses: 14, MaxWidth: 3,
		})
	}
	return out, store
}

// BenchmarkE2ExactVsApprox sweeps the variable-to-clause ratio for
// both confidence computation strategies (Koch & Olteanu VLDB'08
// shape: exact wins outside a narrow ratio band).
func BenchmarkE2ExactVsApprox(b *testing.B) {
	for _, ratio := range []float64{0.5, 1, 2, 4} {
		dnfs, store := e2DNFs(ratio, 16)
		b.Run(fmt.Sprintf("exact/ratio=%g", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.Prob(dnfs[i%len(dnfs)], store)
			}
		})
		b.Run(fmt.Sprintf("aconf/ratio=%g", ratio), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := approx.Conf(dnfs[i%len(dnfs)], store, 0.1, 0.1, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		if ratio <= 1 {
			b.Run(fmt.Sprintf("naive/ratio=%g", ratio), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					naive.Prob(dnfs[i%len(dnfs)], store)
				}
			})
		}
	}
}

// readOnceLineage builds hierarchical (read-once) lineage of a given
// breadth, the shape SPROUT's tractable queries produce.
func readOnceLineage(width int) (lineage.DNF, *ws.Store) {
	rng := rand.New(rand.NewSource(7))
	store := ws.NewStore()
	var d lineage.DNF
	for i := 0; i < width; i++ {
		sub := workload.ReadOnceDNF(rng, store, 2, 3)
		d = append(d, sub...)
	}
	return d, store
}

// BenchmarkE3Sprout compares SPROUT's read-once factorisation against
// the exact d-tree and Monte Carlo on hierarchical lineage (ICDE'09
// shape: SPROUT scales best).
func BenchmarkE3Sprout(b *testing.B) {
	for _, width := range []int{4, 16, 64} {
		d, store := readOnceLineage(width)
		b.Run(fmt.Sprintf("sprout/width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := sprout.Prob(d, store); !ok {
					b.Fatal("lineage must be read-once")
				}
			}
		})
		b.Run(fmt.Sprintf("exact/width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.Prob(d, store)
			}
		})
		b.Run(fmt.Sprintf("aconf/width=%d", width), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := approx.Conf(d, store, 0.1, 0.1, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e4DB builds matching certain and uncertain join inputs.
func e4DB(rows int) *DB {
	db := Open()
	db.MustExec(`create table r (a int, b int); create table s (b int, c int)`)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("insert into r values (%d, %d)", i, rng.Intn(rows/2+1)))
		db.MustExec(fmt.Sprintf("insert into s values (%d, %d)", rng.Intn(rows/2+1), i))
	}
	db.MustExec(`
		create table ur as pick tuples from r independently with probability 0.9;
		create table us as pick tuples from s independently with probability 0.9;
	`)
	return db
}

// BenchmarkE4Translation measures the overhead of the positive-RA
// translation: the same join on certain tables vs U-relations
// (ICDE'08 shape: small constant factor).
func BenchmarkE4Translation(b *testing.B) {
	db := e4DB(500)
	b.Run("certain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.MustQuery(`select r.a, s.c from r, s where r.b = s.b`)
		}
	})
	b.Run("urelation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.MustQuery(`select ur.a, us.c from ur, us where ur.b = us.b`)
		}
	})
}

// e5DB builds the self-join workload contrasting expectation
// aggregates with confidence computation.
func e5DB(groupSize int) *DB {
	db := Open()
	db.MustExec(`create table base (grp int, v int, p float)`)
	rng := rand.New(rand.NewSource(5))
	for grp := 0; grp < 4; grp++ {
		for i := 0; i < groupSize; i++ {
			db.MustExec(fmt.Sprintf("insert into base values (%d, %d, %.3f)", grp, i, 0.3+0.6*rng.Float64()))
		}
	}
	db.MustExec(`create table u as pick tuples from base independently with probability p`)
	return db
}

// BenchmarkE5Expected shows esum staying cheap while conf pays the
// #P price on the same non-read-once self-join lineage.
func BenchmarkE5Expected(b *testing.B) {
	for _, g := range []int{6, 12} {
		db := e5DB(g)
		b.Run(fmt.Sprintf("esum/group=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(`select a.grp, esum(a.v + b.v) from u a, u b where a.grp = b.grp and a.v < b.v group by a.grp`)
			}
		})
		b.Run(fmt.Sprintf("conf/group=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(`select a.grp, conf() from u a, u b where a.grp = b.grp and a.v < b.v group by a.grp`)
			}
		})
	}
}

// BenchmarkE6RepairKey measures uncertainty-introduction throughput.
func BenchmarkE6RepairKey(b *testing.B) {
	db := Open()
	db.MustExec(`create table base (k int, v int, w float)`)
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf("insert into base values (%d, %d, 1)", i/10, i))
	}
	b.Run("repair-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.MustExec(`drop table if exists rk`)
			db.MustExec(`create table rk as repair key k in base weight by w`)
		}
	})
	b.Run("pick-tuples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.MustExec(`drop table if exists pk`)
			db.MustExec(`create table pk as pick tuples from base independently with probability 0.5`)
		}
	})
}

// BenchmarkE7AconfAccuracy measures the cost of tightening ε (trials
// grow ~1/ε²).
func BenchmarkE7AconfAccuracy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	store := ws.NewStore()
	d := workload.RandomDNF(rng, store, workload.DNFConfig{
		Vars: 10, MaxDomain: 2, Clauses: 8, MaxWidth: 3,
	})
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.Conf(d, store, eps, 0.05, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryPipeline measures the end-to-end engine on a plain
// certain SQL workload, as a baseline for the probabilistic overheads.
func BenchmarkQueryPipeline(b *testing.B) {
	db := Open()
	db.MustExec(`create table t (a int, b text)`)
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf("insert into t values (%d, 'v%d')", i, i%10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`select b, count(*), sum(a) from t where a % 2 = 0 group by b order by b`)
	}
}
