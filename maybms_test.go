package maybms

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenExecQuery(t *testing.T) {
	db := Open()
	res, err := db.Exec("create table t (a int, b text)")
	if err != nil || !strings.Contains(res.Msg, "CREATE TABLE") {
		t.Fatalf("%v %v", res, err)
	}
	res, err = db.Exec("insert into t values (1, 'x'), (2, 'y')")
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("%v %v", res, err)
	}
	rows, err := db.Query("select a, b from t order by a")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Columns[0] != "a" || rows.Columns[1] != "b" {
		t.Fatalf("%+v", rows)
	}
	if rows.Data[0][0].(int64) != 1 || rows.Data[1][1].(string) != "y" {
		t.Errorf("%v", rows.Data)
	}
	if !rows.Certain {
		t.Error("plain select is certain")
	}
}

func TestQueryErrors(t *testing.T) {
	db := Open()
	if _, err := db.Query("select * from missing"); err == nil {
		t.Error("missing table")
	}
	if _, err := db.Query("create table t (a int)"); err == nil {
		t.Error("DDL through Query should fail")
	}
	if _, err := db.Exec("not sql at all"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestUncertainRowsCarryLineage(t *testing.T) {
	db := Open()
	db.MustExec(`create table c (f text, w float); insert into c values ('h',1),('t',1)`)
	rows := db.MustQuery(`select f from (repair key in c weight by w) r`)
	if rows.Certain {
		t.Fatal("repair-key result must be uncertain")
	}
	if len(rows.Lineage) != rows.Len() {
		t.Fatalf("lineage length %d vs %d rows", len(rows.Lineage), rows.Len())
	}
	for _, l := range rows.Lineage {
		if !strings.Contains(l, "->") {
			t.Errorf("lineage rendering: %q", l)
		}
	}
	// String() renders the lineage column.
	if !strings.Contains(rows.String(), "[") {
		t.Error("String should show conditions for uncertain results")
	}
}

func TestQueryFloat(t *testing.T) {
	db := Open()
	db.MustExec(`create table c (f text, w float); insert into c values ('h',3),('t',1)`)
	p, err := db.QueryFloat(`select conf() from (repair key in c weight by w) r where f = 'h'`)
	if err != nil || math.Abs(p-0.75) > 1e-12 {
		t.Errorf("%v %v", p, err)
	}
	if _, err := db.QueryFloat(`select f, w from c`); err == nil {
		t.Error("multi-cell should fail")
	}
	if _, err := db.QueryFloat(`select f from c limit 1`); err == nil {
		t.Error("text cell should fail")
	}
}

func TestSaveAndOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.mdb")
	db := Open()
	db.MustExec(`create table c (f text, w float); insert into c values ('h',1),('t',1);
		create table u as repair key in c weight by w`)
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db2.QueryFloat(`select conf() from u where f = 'h'`)
	if err != nil || math.Abs(p-0.5) > 1e-12 {
		t.Errorf("restored conf: %v %v", p, err)
	}
	if _, err := OpenFile(filepath.Join(dir, "missing.mdb")); err == nil {
		t.Error("missing snapshot should fail")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.mdb")
	os.WriteFile(bad, []byte("not a snapshot"), 0o644)
	if _, err := OpenFile(bad); err == nil {
		t.Error("corrupt snapshot should fail")
	}
}

func TestSetSeedReproducible(t *testing.T) {
	run := func() float64 {
		db := Open()
		db.SetSeed(42)
		db.MustExec(`create table c (f text, w float);
			insert into c values ('a',1),('b',1),('c',1),('d',1)`)
		p, err := db.QueryFloat(`select aconf(0.1, 0.1) from (repair key in c weight by w) r where f < 'c'`)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if run() != run() {
		t.Error("seeded aconf must be deterministic")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := Open()
	db.MustExec("create table people (name text, age int, score float)")
	in := "name,age,score\nann,30,1.5\nbob,25,\ncarol o'hara,40,2.25\n"
	n, err := db.ImportCSV("people", strings.NewReader(in))
	if err != nil || n != 3 {
		t.Fatalf("import: %d %v", n, err)
	}
	rows := db.MustQuery("select name, age, score from people order by name")
	if rows.Data[1][2] != nil {
		t.Errorf("empty cell should be NULL: %v", rows.Data[1])
	}
	if rows.Data[2][0].(string) != "carol o'hara" {
		t.Errorf("quote escaping: %v", rows.Data[2])
	}
	var buf bytes.Buffer
	if err := db.ExportCSV(&buf, "select name, age from people order by name"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "name,age\n") || !strings.Contains(out, "ann,30") {
		t.Errorf("export: %q", out)
	}
	// Import into a missing table fails cleanly.
	if _, err := db.ImportCSV("missing", strings.NewReader("a\n1\n")); err == nil {
		t.Error("missing table should fail")
	}
}

func TestTablesListing(t *testing.T) {
	db := Open()
	db.MustExec("create table zzz (a int); create table aaa (a int)")
	got := db.Tables()
	if len(got) != 2 || got[0] != "aaa" || got[1] != "zzz" {
		t.Errorf("tables: %v", got)
	}
}

func TestMustQueryRelAndWorldStore(t *testing.T) {
	db := Open()
	db.MustExec(`create table c (f text, w float); insert into c values ('h',1),('t',1)`)
	rel := db.MustQueryRel(`select f from (repair key in c weight by w) r`)
	if rel.IsCertain() || rel.Len() != 2 {
		t.Fatalf("rel: %v", rel)
	}
	store := db.WorldStore()
	if store.NumVars() == 0 {
		t.Error("repair key should have registered variables")
	}
	if p := rel.TupleProb(0, store); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("marginal: %v", p)
	}
}

func TestTransactionsThroughAPI(t *testing.T) {
	db := Open()
	db.MustExec("create table t (a int)")
	db.MustExec("begin; insert into t values (1); rollback")
	rows := db.MustQuery("select count(*) from t")
	if rows.Data[0][0].(int64) != 0 {
		t.Error("rollback through API")
	}
}

func TestConditionOn(t *testing.T) {
	db := Open()
	db.MustExec(`create table c (f text, w float); insert into c values ('h',1),('t',1);
		create table flip1 as repair key in c weight by w;
		create table flip2 as select f from (repair key in c weight by w) r`)
	// Evidence: flip1 landed heads.
	post, err := db.ConditionOn(`select f from flip1 where f = 'h'`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post.EvidenceProb()-0.5) > 1e-12 {
		t.Errorf("P(B)=%v", post.EvidenceProb())
	}
	// Given flip1=heads: P(flip1=tails | B) = 0.
	p, err := post.Prob(`select f from flip1 where f = 't'`)
	if err != nil || p != 0 {
		t.Errorf("contradiction: %v %v", p, err)
	}
	// The independent second flip is unaffected.
	p, err = post.Prob(`select f from flip2 where f = 'h'`)
	if err != nil || math.Abs(p-0.5) > 1e-12 {
		t.Errorf("independent flip: %v %v", p, err)
	}
	// Conditioning on impossible evidence fails.
	if _, err := db.ConditionOn(`select f from flip1 where f = 'x'`); err == nil {
		t.Error("impossible evidence must fail")
	}
	// Disjunctive evidence creates correlation: given h1 ∨ h2 over two
	// independent coins, P(h1 | B) = 2/3.
	post, err = db.ConditionOn(`
		select f from flip1 where f = 'h'
		union all
		select f from flip2 where f = 'h'`)
	if err != nil {
		t.Fatal(err)
	}
	p, err = post.Prob(`select f from flip1 where f = 'h'`)
	if err != nil || math.Abs(p-2.0/3) > 1e-9 {
		t.Errorf("P(h1 | h1∨h2) = %v want 2/3 (%v)", p, err)
	}
}
