//go:build race

package maybms

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
