// Social network analysis: the third demonstration scenario on the
// MayBMS website. Observed interactions suggest friendships with
// varying confidence; pick-tuples turns the weighted edge list into a
// distribution over graphs, and confidence queries answer structural
// questions — influence, triangles, expected degree — over all
// possible graphs at once.
package main

import (
	"fmt"

	"maybms"
)

func main() {
	db := maybms.Open()

	// Edges with extraction confidence (symmetric closure included).
	db.MustExec(`
		create table observed (src text, dst text, p float);
		insert into observed values
			('ann','bob',0.9), ('bob','ann',0.9),
			('bob','carol',0.6), ('carol','bob',0.6),
			('ann','carol',0.3), ('carol','ann',0.3),
			('carol','dave',0.8), ('dave','carol',0.8),
			('dave','erin',0.5), ('erin','dave',0.5),
			('ann','erin',0.1), ('erin','ann',0.1);
	`)
	// The uncertain graph: each undirected edge either exists or not.
	// We pick on a canonical direction and mirror it so both
	// directions share one coin flip... here we keep directions
	// independent for simplicity of the demo and use the canonical
	// (src < dst) half for undirected questions.
	db.MustExec(`
		create table half as select src, dst, p from observed where src < dst;
		create table edge as pick tuples from half independently with probability p;
	`)

	fmt.Println("-- marginal probability of each (undirected) edge --")
	fmt.Print(db.MustQuery(`select src, dst, tconf() p from edge order by src, dst`))

	fmt.Println("\n-- expected number of friendships and expected degree of ann --")
	fmt.Print(db.MustQuery(`select ecount() expected_edges from edge`))
	fmt.Print(db.MustQuery(`
		select ecount() ann_expected_degree from edge
		where src = 'ann' or dst = 'ann'`))

	// Two-hop influence: can ann reach dave through one intermediary?
	fmt.Println("\n-- P(ann connected to dave via some 2-hop path) --")
	fmt.Print(db.MustQuery(`
		select conf() p_two_hop
		from edge e1, edge e2
		where e1.src = 'ann' and e1.dst = e2.src and e2.dst = 'dave'`))

	// Triangles: the probability that a closed triad exists at all —
	// the classic non-hierarchical (#P-hard) query shape, answered by
	// the exact d-tree algorithm.
	fmt.Println("\n-- P(some triangle exists) --")
	// Edges are stored canonically (src < dst), so a triangle a<b<c is
	// (a,b), (b,c), (a,c).
	fmt.Print(db.MustQuery(`
		select conf() p_triangle
		from edge e1, edge e2, edge e3
		where e1.dst = e2.src and e1.src = e3.src and e2.dst = e3.dst`))

	// Per-person probability of being connected to ann (1 hop).
	fmt.Println("\n-- P(direct friendship with ann), per person --")
	fmt.Print(db.MustQuery(`
		select dst person, conf() p from edge where src = 'ann' group by dst
		union all
		select src person, conf() p from edge where dst = 'ann' group by src
		order by p desc`))

	// What-if: if we confirmed ann-carol (set it certain), how does
	// the 2-hop reachability to dave change?
	fmt.Println("\n-- what-if: ann-carol confirmed; P(ann reaches dave in 2 hops) --")
	db.MustExec(`
		create table confirmed (src text, dst text, p float);
		insert into confirmed select src, dst, p from half where not (src = 'ann' and dst = 'carol');
		insert into confirmed values ('ann', 'carol', 1.0);
		create table edge2 as pick tuples from confirmed independently with probability p;
	`)
	fmt.Print(db.MustQuery(`
		select conf() p_two_hop
		from edge2 e1, edge2 e2
		where e1.src = 'ann' and e1.dst = e2.src and e2.dst = 'dave'`))
}
