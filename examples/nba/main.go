// NBA what-if analysis: the paper's Section 3 human-resource
// management demo on synthetic nba.com-shaped data. It runs the three
// scenarios the demo describes — team skill management, performance
// prediction, and fitness prediction via random walks on stochastic
// matrices — including the paper's exact FT2 / 3-step-walk queries.
package main

import (
	"fmt"

	"maybms"
	"maybms/internal/nbagen"
)

func main() {
	db := maybms.Open()
	cfg := nbagen.DefaultConfig()
	db.MustExec(nbagen.Script(cfg))
	fmt.Printf("loaded %d teams x %d players\n\n", cfg.Teams, cfg.PlayersPerTeam)

	teamManagement(db)
	performancePrediction(db)
	fitnessPrediction(db)
	layoffScenario(db)
}

// teamManagement: for each skill, the probability that someone with
// that skill will be playing, given each player's current fitness.
// A player is available tomorrow if their 1-step fitness walk lands on
// 'F'; skill availability is the disjunction over skilled players.
func teamManagement(db *maybms.DB) {
	fmt.Println("== team management: P(skill available tomorrow) per team ==")
	db.MustExec(`
		create table walk1 as
		select r.player, r.final
		from (repair key player, init in ft weight by p) r, states s
		where r.player = s.player and r.init = s.state;
	`)
	fmt.Print(db.MustQuery(`
		select p.team, k.skill, conf() availability
		from walk1 w, skills k, players p
		where w.player = k.player and w.player = p.player and w.final = 'F'
		group by p.team, k.skill
		order by p.team, k.skill`))
	fmt.Println()
}

// performancePrediction: predicted next-game points as a recency-
// weighted average of the game log (higher weight to recent games).
func performancePrediction(db *maybms.DB) {
	fmt.Println("== performance prediction: top 5 predicted scorers ==")
	fmt.Print(db.MustQuery(`
		select player, sum(points * game) / sum(game) predicted
		from gamelog
		group by player
		order by predicted desc, player
		limit 5`))
	fmt.Println()
}

// fitnessPrediction: the paper's random-walk queries. A must-win match
// is three days away; compute each player's 3-day fitness distribution
// by composing a 2-step walk (materialised as FT2, the matrix square)
// with one more step.
func fitnessPrediction(db *maybms.DB) {
	fmt.Println("== fitness prediction: 3-day outlook (paper's FT2 query) ==")
	db.MustExec(`
		create table ft2 as
		select r1.player, r1.init, r2.final, conf() as p from
			(repair key player, init in ft weight by p) r1,
			(repair key player, init in ft weight by p) r2, states s
		where r1.player = s.player and r1.init = s.state
			and r1.final = r2.init and r1.player = r2.player
		group by r1.player, r1.init, r2.final;

		create table ft3 as
		select r1.player, r2.final as state, conf() as p from
			(repair key player, init in ft2 weight by p) r1,
			(repair key player, init in ft weight by p) r2
		where r1.final = r2.init and r1.player = r2.player
		group by r1.player, r2.final;
	`)
	fmt.Println("-- five players least likely to be fit in three days --")
	fmt.Print(db.MustQuery(`
		select player, p as p_fit
		from ft3
		where state = 'F'
		order by p, player
		limit 5`))
	fmt.Println()
}

// layoffScenario: the financial-crisis question — who are the
// highest-paid players whose team would still keep shooting available
// with probability at least 0.9 without them?
func layoffScenario(db *maybms.DB) {
	fmt.Println("== layoff scenario: shooting availability excluding each top earner ==")
	// Candidate layoffs: the three highest salaries.
	db.MustExec(`
		create table candidates as
		select player, team, salary from players
		order by salary desc
		limit 3;
	`)
	rows := db.MustQuery(`select player, team from candidates order by player`)
	for _, r := range rows.Data {
		player := r[0].(string)
		team := r[1].(string)
		q := fmt.Sprintf(`
			select conf() p
			from walk1 w, skills k, players p
			where w.player = k.player and w.player = p.player
				and w.final = 'F' and k.skill = 'shooting'
				and p.team = '%s' and p.player <> '%s'`, team, player)
		res := db.MustQuery(q)
		p := 0.0
		if res.Len() == 1 {
			if f, ok := res.Data[0][0].(float64); ok {
				p = f
			}
		}
		verdict := "cannot lay off"
		if p >= 0.9 {
			verdict = "can lay off"
		}
		fmt.Printf("%-20s (%s): shooting availability without them = %.4f -> %s\n",
			player, team, p, verdict)
	}
}
