// Quickstart: create a probabilistic database, introduce uncertainty
// with repair-key and pick-tuples, and query confidences — the
// smallest end-to-end tour of the MayBMS query language.
package main

import (
	"fmt"

	"maybms"
)

func main() {
	db := maybms.Open()

	// A plain (t-certain) table of weighted alternatives.
	db.MustExec(`
		create table weather (outlook text, w float);
		insert into weather values ('sun', 6), ('rain', 3), ('snow', 1);
	`)

	// repair-key turns it into an uncertain table: exactly one outlook
	// holds, with probability proportional to the weight.
	fmt.Println("-- marginal probability of each outlook (tconf) --")
	fmt.Print(db.MustQuery(`
		select outlook, tconf() p
		from (repair key in weather weight by w) r
		order by p desc`))

	// conf() groups duplicates and computes exact event probabilities.
	fmt.Println("\n-- P(no snow) --")
	fmt.Print(db.MustQuery(`
		select conf() p_no_snow
		from (repair key in weather weight by w) r
		where outlook <> 'snow'`))

	// pick-tuples models independent tuple-level uncertainty.
	db.MustExec(`
		create table sensors (sensor text, reading float, trust float);
		insert into sensors values
			('s1', 20.0, 0.9), ('s2', 23.0, 0.7), ('s3', 40.0, 0.2);
		create table trusted as
			pick tuples from sensors independently with probability trust;
	`)

	fmt.Println("\n-- expected number of trustworthy sensors and expected sum of readings --")
	fmt.Print(db.MustQuery(`select ecount() sensors, esum(reading) total from trusted`))

	fmt.Println("\n-- which sensors are possible at all --")
	fmt.Print(db.MustQuery(`select possible sensor from trusted order by sensor`))

	// What-if: probability that at least one sensor reads above 22.
	fmt.Println("\n-- P(some reading > 22) --")
	fmt.Print(db.MustQuery(`select conf() p from trusted where reading > 22`))
}
