// Data cleaning with constraints: one of the demonstration scenarios
// on the MayBMS website. A customer table extracted from multiple
// sources contains conflicting duplicates; the key constraint says
// each customer id has exactly one true record. repair-key turns the
// dirty table into the distribution over its consistent repairs, and
// confidence queries answer questions over all repairs at once.
package main

import (
	"fmt"

	"maybms"
)

func main() {
	db := maybms.Open()

	// Dirty extraction: duplicate customer ids with conflicting
	// attributes; source_trust scores how reliable each record's
	// extractor was.
	db.MustExec(`
		create table dirty (cid int, name text, city text, source_trust float);
		insert into dirty values
			(1, 'Alice Smith',  'Oxford',    0.8),
			(1, 'Alice Smith',  'Cambridge', 0.2),
			(2, 'Bob Jones',    'London',    0.5),
			(2, 'Robert Jones', 'London',    0.5),
			(3, 'Carol White',  'Ithaca',    1.0),
			(4, 'Bob Jones',    'Leeds',     0.3),
			(4, 'Bobby Jones',  'Leeds',     0.7);
	`)

	// The space of repairs: per cid, exactly one record survives,
	// weighted by extractor trust.
	db.MustExec(`create table clean as repair key cid in dirty weight by source_trust`)

	fmt.Println("-- marginal probability of each candidate record --")
	fmt.Print(db.MustQuery(`
		select cid, name, city, tconf() p from clean order by cid, p desc`))

	fmt.Println("\n-- most probable city per customer (threshold report) --")
	fmt.Print(db.MustQuery(`
		select cid, city, conf() p
		from clean
		group by cid, city
		order by cid, p desc`))

	fmt.Println("\n-- P(customer lives in Oxford), over all repairs --")
	fmt.Print(db.MustQuery(`
		select conf() p_oxford from clean where city = 'Oxford'`))

	fmt.Println("\n-- expected number of distinct London customers --")
	fmt.Print(db.MustQuery(`
		select ecount() expected_customers from clean where city = 'London'`))

	// Constraint check as a query: the probability that two different
	// customers share a name (possible identity duplication across
	// ids) — flagged for human review when above a threshold.
	fmt.Println("\n-- P(two distinct customer ids share a name) --")
	fmt.Print(db.MustQuery(`
		select conf() p_shared_name
		from clean a, clean b
		where a.name = b.name and a.cid < b.cid`))

	// Cleaning decision: materialise the maximum-probability repair.
	fmt.Println("\n-- accepted records (marginal probability > 0.5) --")
	db.MustExec(`
		create table accepted as
		select cid, name, city, tconf() p from clean;
	`)
	fmt.Print(db.MustQuery(`
		select cid, name, city from accepted where p > 0.5 order by cid`))
}
