// Serverdemo: run the MayBMS network server and the Go client in one
// process — the client/server twin of examples/quickstart. A server
// is started on an ephemeral port over an embedded database, then
// several concurrent clients load data with repair-key and query
// confidences over HTTP/JSON; read-only conf() queries execute in
// parallel, each against its own point-in-time snapshot.
package main

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"maybms"
	"maybms/client"
	"maybms/internal/server"
)

func main() {
	// Embedded engine, wrapped by the network server.
	mdb := maybms.Open()
	srv := server.New(mdb, server.Options{})
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("server listening on %s\n\n", base)

	// One client seeds the database over the wire.
	c, err := client.Open(base)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	c.MustExec(`
		create table weather (outlook text, w float);
		insert into weather values ('sun', 6), ('rain', 3), ('snow', 1);
		create table forecast as repair key in weather weight by w`)

	// CSV bulk load through the import endpoint.
	c.MustExec(`create table sensors (sensor text, reading float, trust float)`)
	n, err := c.ImportCSV("sensors", strings.NewReader(
		"sensor,reading,trust\ns1,20.0,0.9\ns2,23.0,0.7\ns3,40.0,0.2\n"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("imported %d sensor rows over HTTP\n\n", n)
	c.MustExec(`create table trusted as
		pick tuples from sensors independently with probability trust`)

	fmt.Println("-- marginal probability of each outlook, over the wire --")
	fmt.Print(c.MustQuery(`
		select outlook, tconf() p from forecast order by p desc`))

	// Many clients, one shared engine: each goroutine opens its own
	// session and runs read-only confidence queries concurrently.
	queries := []string{
		`select conf() p_no_snow from forecast where outlook <> 'snow'`,
		`select conf() p_wet from forecast where outlook <> 'sun'`,
		`select conf() p from trusted where reading > 22`,
		`select ecount() sensors from trusted`,
	}
	var wg sync.WaitGroup
	results := make([]float64, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			cc, err := client.Open(base)
			if err != nil {
				panic(err)
			}
			defer cc.Close()
			v, err := cc.QueryFloat(q)
			if err != nil {
				panic(err)
			}
			results[i] = v
		}(i, q)
	}
	wg.Wait()
	fmt.Println("\n-- concurrent confidence queries (4 sessions in parallel) --")
	for i, q := range queries {
		fmt.Printf("%-60s = %.4f\n", strings.Join(strings.Fields(q), " "), results[i])
	}

	// The server shares the engine with the embedded API: the same
	// database is visible in-process.
	p, _ := mdb.QueryFloat(`select conf() from forecast where outlook <> 'snow'`)
	fmt.Printf("\nembedded view of the same engine: P(no snow) = %.4f\n", p)
}
