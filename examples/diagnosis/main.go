// Diagnosis by conditioning: the paper's introduction motivates
// probabilistic databases with "decision support and diagnosis systems
// employ hypothetical (what-if) queries". This example models a small
// machine-fault diagnosis problem and updates beliefs as evidence
// arrives, using database conditioning (Koch & Olteanu, VLDB 2008 —
// the paper's reference [3]) through maybms.DB.ConditionOn.
package main

import (
	"fmt"

	"maybms"
)

func main() {
	db := maybms.Open()

	// Prior fault model: each component fails independently.
	db.MustExec(`
		create table components (name text, fail_p float);
		insert into components values
			('pump',   0.10),
			('valve',  0.05),
			('sensor', 0.20),
			('wiring', 0.15);
		create table faults as
			select name from
			(pick tuples from components independently with probability fail_p) f;
	`)

	fmt.Println("-- prior fault probabilities --")
	fmt.Print(db.MustQuery(`select name, conf() p from faults group by name order by p desc`))

	// Symptom model: which faults can produce which observable
	// symptoms. A symptom fires iff one of its causes is faulty (we
	// treat causes as sufficient for this demo).
	db.MustExec(`
		create table causes (symptom text, cause text);
		insert into causes values
			('no_flow',    'pump'),
			('no_flow',    'valve'),
			('bad_reading','sensor'),
			('bad_reading','wiring'),
			('alarm',      'pump'),
			('alarm',      'wiring');
	`)

	prior, _ := db.QueryFloat(`
		select conf() from faults f, causes c
		where f.name = c.cause and c.symptom = 'no_flow'`)
	fmt.Printf("\nP(no_flow symptom) prior = %.4f\n", prior)

	// Evidence arrives: the operator observes no_flow.
	post, err := db.ConditionOn(`
		select f.name from faults f, causes c
		where f.name = c.cause and c.symptom = 'no_flow'`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("evidence probability (prior of the observation): %.4f\n\n", post.EvidenceProb())

	fmt.Println("-- posterior fault probabilities given no_flow --")
	for _, comp := range []string{"pump", "valve", "sensor", "wiring"} {
		p, err := post.Prob(fmt.Sprintf(`select name from faults where name = '%s'`, comp))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %.4f\n", comp, p)
	}

	// What-if: given no_flow, how likely is the alarm symptom too?
	p, err := post.Prob(`
		select f.name from faults f, causes c
		where f.name = c.cause and c.symptom = 'alarm'`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nP(alarm | no_flow) = %.4f  (prior: ", p)
	pa, _ := db.QueryFloat(`
		select conf() from faults f, causes c
		where f.name = c.cause and c.symptom = 'alarm'`)
	fmt.Printf("%.4f)\n", pa)
	fmt.Println("\nthe shared 'pump' cause makes the alarm more likely once no_flow is observed")
}
