package maybms

import (
	"fmt"
	"strings"
	"testing"
)

// Benchmarks for snapshot-isolated reads (PR 3): writer latency while
// N streaming cursors are held open mid-iteration. Before snapshots, a
// cursor pinned the engine's read lock until Close, so a single open
// cursor blocked every writer for the cursor's whole lifetime — the
// "8 cursors" variants would simply hang. With snapshots the writer's
// cost is bounded: an insert appends (no copy), and the first in-place
// update after a snapshot pays one copy-on-write of the table's row
// arrays. Results are recorded in BENCH_mvcc.json.

const mvccRows = 50000

func mvccDB(b *testing.B) *DB {
	db := Open()
	db.MustExec(`create table wt (id int, grp int, price float)`)
	var stmt strings.Builder
	for i := 0; i < mvccRows; {
		stmt.Reset()
		stmt.WriteString("insert into wt values ")
		for j := 0; j < 1000 && i < mvccRows; j, i = j+1, i+1 {
			if j > 0 {
				stmt.WriteByte(',')
			}
			fmt.Fprintf(&stmt, "(%d, %d, %d.5)", i, i%97, i%13)
		}
		db.MustExec(stmt.String())
	}
	return db
}

// openCursors opens n streaming cursors and pulls one batch from each,
// leaving them mid-iteration for the benchmark body.
func openCursors(b *testing.B, db *DB, n int) func() {
	cursors := make([]*RowsCursor, n)
	for i := range cursors {
		cur, err := db.QueryRows(`select id, grp, price from wt`)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			b.Fatal(err)
		}
		cursors[i] = cur
	}
	return func() {
		for _, c := range cursors {
			c.Close()
		}
	}
}

func benchmarkWriterLatency(b *testing.B, nCursors int, write func(db *DB, i int) string) {
	db := mvccDB(b)
	closeAll := openCursors(b, db, nCursors)
	defer closeAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(write(db, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func insertStmt(_ *DB, i int) string {
	return fmt.Sprintf(`insert into wt values (%d, -1, 0.5)`, mvccRows+i)
}

func updateStmt(_ *DB, i int) string {
	return fmt.Sprintf(`update wt set price = price + 1 where id = %d`, i%mvccRows)
}

func BenchmarkWriterInsertNoCursors(b *testing.B) { benchmarkWriterLatency(b, 0, insertStmt) }
func BenchmarkWriterInsert8Cursors(b *testing.B)  { benchmarkWriterLatency(b, 8, insertStmt) }
func BenchmarkWriterUpdateNoCursors(b *testing.B) { benchmarkWriterLatency(b, 0, updateStmt) }
func BenchmarkWriterUpdate8Cursors(b *testing.B)  { benchmarkWriterLatency(b, 8, updateStmt) }
