package maybms

import "testing"

// Benchmarks comparing the two executor paths — the recursive
// materialiser and the Volcano-style streaming pipeline — on the
// workloads the streaming refactor targets: a wide scan-filter-project
// over a 100k-row table, and a LIMIT 10 over a large repair-key
// (uncertain) table where early termination should make the query
// O(k + batch). Results are recorded in BENCH_streaming.json.

// wideQuery projects every column plus computed expressions over most
// of the table: the pipeline carries wide tuples end to end.
const wideQuery = `select id, grp, name, price, price * 2 + grp as adj from big where id % 10 <> 0`

// limitQuery pulls ten conditioned tuples off a 100k-row repair-key
// table; the streaming path must stop the scan after one batch.
const limitQuery = `select id, name from bigu limit 10`

func benchQueryRel(b *testing.B, q string, materialised bool) {
	eng := bigDB().Engine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := eng.QueryRel(q, materialised)
		if err != nil {
			b.Fatal(err)
		}
		_ = rel
	}
}

func BenchmarkScanFilterProjectMaterialised(b *testing.B) { benchQueryRel(b, wideQuery, true) }
func BenchmarkScanFilterProjectStreaming(b *testing.B)    { benchQueryRel(b, wideQuery, false) }

func BenchmarkLimit10RepairKeyMaterialised(b *testing.B) { benchQueryRel(b, limitQuery, true) }
func BenchmarkLimit10RepairKeyStreaming(b *testing.B)    { benchQueryRel(b, limitQuery, false) }
