// Package maybms is a probabilistic database management system in pure
// Go, reproducing "MayBMS: A Probabilistic Database Management System"
// (Huang, Antova, Koch, Olteanu — SIGMOD 2009).
//
// MayBMS stores uncertain data in U-relations — relations extended
// with condition columns over finite independent random variables —
// and exposes an extension of SQL with uncertainty-aware constructs:
//
//   - repair key ... in ... weight by ...   (key repair → uncertainty)
//   - pick tuples from ... with probability (subset distribution)
//   - conf(), aconf(ε,δ), tconf()           (confidence computation)
//   - possible                              (certain answers filter)
//   - esum(e), ecount()                     (expected aggregates)
//   - argmax(arg, value)                    (maximising arguments)
//
// Confidence computation uses SPROUT-style read-once factorisation
// for tractable lineage, the Koch-Olteanu exact d-tree algorithm in
// general, and Karp-Luby Monte Carlo estimation with the
// Dagum-Karp-Luby-Ross optimal stopping rule for aconf.
//
// Quickstart:
//
//	db := maybms.Open()
//	db.MustExec(`create table coin (face text, w float)`)
//	db.MustExec(`insert into coin values ('heads', 1), ('tails', 1)`)
//	rows := db.MustQuery(`select face, conf() p from (repair key in coin weight by w) c group by face`)
//	fmt.Println(rows)
package maybms

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"maybms/internal/condition"
	"maybms/internal/db"
	"maybms/internal/lineage"
	"maybms/internal/types"
	"maybms/internal/urel"
	"maybms/internal/ws"
)

// DB is a MayBMS database handle. It is safe for concurrent use;
// statements are serialised internally.
type DB struct {
	inner *db.Database
}

// Open creates a new empty in-memory database. Intra-query
// parallelism defaults to GOMAXPROCS; see Options to pin it.
func Open() *DB { return &DB{inner: db.New()} }

// Options configures OpenOptions.
type Options struct {
	// Parallelism is the degree of intra-query parallelism: scans (and
	// the filter/project/semijoin pipelines above them) over large
	// tables are partitioned into this many row-range shards executed
	// concurrently, and aconf()'s Monte Carlo sampling uses this many
	// workers. Results are byte-identical at every setting — the
	// exchange merge preserves order and the sampling schedule is
	// fixed by the seed — so the knob trades only memory for latency.
	// 0 means GOMAXPROCS; 1 disables parallel execution.
	Parallelism int
	// WorkerPool caps the total number of partition-worker goroutines
	// across every concurrently executing query (exchanges and
	// partitioned aggregation/sort/distinct breakers share one pool).
	// Fragments beyond the cap queue and are run inline by their own
	// query's goroutine when the merge needs them, so a small pool
	// bounds goroutines without ever deadlocking or changing results.
	// 0 means GOMAXPROCS.
	WorkerPool int
	// Seed, when non-zero, fixes the root seed of Monte Carlo
	// estimation exactly as SetSeed would.
	Seed int64
	// DataDir, when non-empty, selects the WAL-durable disk storage
	// engine rooted at that directory (see OpenDurable). Empty keeps
	// the in-memory heap engine.
	DataDir string
	// Fsync makes every statement fsync the write-ahead log before
	// returning; without it the log is fsynced by a background timer
	// (~200ms), so a machine crash can lose the last interval. Only
	// meaningful with DataDir.
	Fsync bool
	// CheckpointBytes overrides the WAL size that triggers an
	// automatic checkpoint (0 = 16 MiB default). Only meaningful with
	// DataDir.
	CheckpointBytes int64
}

// OpenOptions creates a new database with the given options. With a
// DataDir it delegates to OpenDurable and panics on an open error;
// callers that need to handle recovery failures should call
// OpenDurable directly.
func OpenOptions(o Options) *DB {
	if o.DataDir != "" {
		d, err := OpenDurable(o)
		if err != nil {
			panic(fmt.Sprintf("maybms: %v", err))
		}
		return d
	}
	d := Open()
	if o.Parallelism != 0 {
		d.SetParallelism(o.Parallelism)
	}
	if o.WorkerPool != 0 {
		d.SetWorkerPool(o.WorkerPool)
	}
	if o.Seed != 0 {
		d.SetSeed(o.Seed)
	}
	return d
}

// SetParallelism sets the degree of intra-query parallelism (see
// Options.Parallelism). Safe to call at any time; statements already
// executing finish at the old degree.
func (d *DB) SetParallelism(n int) { d.inner.SetParallelism(n) }

// Parallelism reports the configured degree of intra-query
// parallelism.
func (d *DB) Parallelism() int { return d.inner.Parallelism() }

// SetWorkerPool caps the engine's partition-worker goroutines across
// all concurrent queries (see Options.WorkerPool; 0 restores the
// GOMAXPROCS default). Safe to call at any time; statements already
// executing keep the pool they started with.
func (d *DB) SetWorkerPool(n int) { d.inner.SetWorkerPool(n) }

// OpenFile loads a database snapshot previously written by SaveFile.
func OpenFile(path string) (*DB, error) {
	d := Open()
	if err := d.inner.LoadFile(path); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveFile writes a snapshot of the database to path.
func (d *DB) SaveFile(path string) error { return d.inner.SaveFile(path) }

// SetSeed fixes the random source behind aconf's Monte Carlo sampling,
// making approximate results reproducible. The source is internally
// synchronised, so seeded databases remain safe for concurrent use
// (though interleaving of concurrent aconf() calls is of course not
// deterministic).
func (d *DB) SetSeed(seed int64) {
	d.inner.SetSeed(seed)
}

// PlanCacheStats reports the normalized-plan cache's cumulative hit
// and miss counts and its current entry count (see the engine's query
// planning docs: read-only queries are normalized, fingerprinted, and
// their optimized plans reused until a write invalidates them).
func (d *DB) PlanCacheStats() (hits, misses, entries int64) {
	return d.inner.PlanCacheStats()
}

// Engine exposes the underlying database engine for in-process
// frontends (the network server, the experiment harness). Most callers
// should stay on the DB API.
func (d *DB) Engine() *db.Database { return d.inner }

// Result reports the outcome of a statement.
type Result struct {
	// RowsAffected counts rows changed by DML.
	RowsAffected int
	// Msg describes DDL and transaction outcomes.
	Msg string
}

// Exec runs a script of one or more semicolon-separated statements and
// discards any rows, returning the last statement's summary.
func (d *DB) Exec(src string) (Result, error) {
	r, err := d.inner.Run(src)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: r.RowsAffected, Msg: r.Msg}, nil
}

// MustExec is Exec that panics on error; for examples and tests.
func (d *DB) MustExec(src string) Result {
	r, err := d.Exec(src)
	if err != nil {
		panic(fmt.Sprintf("maybms: %v", err))
	}
	return r
}

// Rows is a materialised query result. For uncertain results, Lineage
// holds one world-set descriptor per row (empty string for
// unconditional tuples) and Certain is false.
type Rows struct {
	// Columns are the output column names.
	Columns []string
	// Data holds one slice per row; cell values are nil (NULL), int64,
	// float64, string, or bool.
	Data [][]interface{}
	// Certain reports whether the result is a t-certain table.
	Certain bool
	// Lineage holds the per-row condition rendering for uncertain
	// results; empty otherwise.
	Lineage []string
}

// Len reports the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// String renders the result as an aligned text table.
func (r *Rows) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, len(r.Data))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for i, row := range r.Data {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = renderCell(v)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for i := range cells {
		for j, cell := range cells[i] {
			if j > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		if !r.Certain && r.Lineage[i] != "" {
			b.WriteString("   [" + r.Lineage[i] + "]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderCell(v interface{}) string {
	if v == nil {
		return "NULL"
	}
	switch v := v.(type) {
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// Query runs a single query statement and materialises its result.
func (d *DB) Query(src string) (*Rows, error) {
	r, err := d.inner.Run(src)
	if err != nil {
		return nil, err
	}
	if r.Rel == nil {
		return nil, fmt.Errorf("maybms: statement returned no rows (use Exec)")
	}
	return fromRel(r.Rel), nil
}

// MustQuery is Query that panics on error; for examples and tests.
func (d *DB) MustQuery(src string) *Rows {
	r, err := d.Query(src)
	if err != nil {
		panic(fmt.Sprintf("maybms: %v", err))
	}
	return r
}

func fromRel(rel *urel.Rel) *Rows {
	out := &Rows{Certain: rel.IsCertain()}
	for _, c := range rel.Sch.Cols {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, t := range rel.Tuples {
		row := make([]interface{}, len(t.Data))
		for i, v := range t.Data {
			row[i] = toIface(v)
		}
		out.Data = append(out.Data, row)
	}
	if !out.Certain {
		out.Lineage = make([]string, len(rel.Tuples))
		for i, t := range rel.Tuples {
			if len(t.Cond) > 0 {
				out.Lineage[i] = t.Cond.String()
			}
		}
	}
	return out
}

// RowsFromRel materialises a raw U-relation result as Rows. Intended
// for in-process frontends (the network server, the shell); most
// callers want Query.
func RowsFromRel(rel *urel.Rel) *Rows { return fromRel(rel) }

// RowsCursor streams a query result batch by batch without ever
// materialising it: the pipeline behind it pulls tuples from storage
// on demand, so the first rows arrive before the scan completes and a
// closed cursor stops all remaining work. A cursor over a read-only
// query streams from a point-in-time snapshot of the database and
// holds no lock: writers proceed while it is open, any statement may
// run on the same goroutine mid-iteration, and the cursor keeps
// observing the state as of QueryRows. The cost is memory — the
// snapshot keeps the frozen rows reachable until the cursor is closed
// (Next closes automatically at io.EOF or on error; defer Close on
// every other path).
type RowsCursor struct {
	// Columns are the output column names.
	Columns []string
	// Certain reports whether the result is statically known
	// t-certain; uncertain cursors carry per-row lineage in each batch.
	Certain bool
	cur     *db.Cursor
}

// QueryRows runs a single query statement and returns a streaming
// cursor over its result. Read-only queries stream from a snapshot
// captured at this call; queries containing repair-key or pick-tuples
// (writes: they allocate world-set variables) are executed to
// completion first and the cursor serves the stored result.
func (d *DB) QueryRows(src string) (*RowsCursor, error) {
	cur, err := d.inner.OpenQuery(src)
	if err != nil {
		return nil, err
	}
	return newRowsCursor(cur), nil
}

// RowsCursorFromRel wraps a materialised U-relation in a cursor.
// Intended for in-process frontends (the network server's streaming
// endpoint serving write-query results); most callers want QueryRows.
func RowsCursorFromRel(rel *urel.Rel) *RowsCursor {
	return newRowsCursor(db.NewRelCursor(rel))
}

// NewRowsCursor wraps an engine cursor (db.Database.OpenQueryStmt).
// Intended for in-process frontends that parse statements themselves;
// most callers want QueryRows.
func NewRowsCursor(cur *db.Cursor) *RowsCursor { return newRowsCursor(cur) }

func newRowsCursor(cur *db.Cursor) *RowsCursor {
	c := &RowsCursor{Certain: cur.Certain(), cur: cur}
	for _, col := range cur.Sch().Cols {
		c.Columns = append(c.Columns, col.Name)
	}
	return c
}

// Next returns the next batch of rows as a Rows page (Columns and
// Certain repeated from the cursor), or (nil, io.EOF) when the result
// is exhausted. The page is owned by the caller.
func (c *RowsCursor) Next() (*Rows, error) {
	b, err := c.cur.Next()
	if err != nil {
		return nil, err
	}
	page := &Rows{Columns: c.Columns, Certain: c.Certain}
	for _, t := range b.Tuples {
		row := make([]interface{}, len(t.Data))
		for i, v := range t.Data {
			row[i] = toIface(v)
		}
		page.Data = append(page.Data, row)
	}
	if !c.Certain {
		page.Lineage = make([]string, len(b.Tuples))
		for i, t := range b.Tuples {
			if len(t.Cond) > 0 {
				page.Lineage[i] = t.Cond.String()
			}
		}
	}
	return page, nil
}

// Close releases the cursor (and the snapshot it pins); idempotent.
func (c *RowsCursor) Close() error { return c.cur.Close() }

func toIface(v types.Value) interface{} {
	switch v.Kind() {
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindText:
		return v.Text()
	case types.KindBool:
		return v.Bool()
	default:
		return nil
	}
}

// Float interprets the result as a single numeric cell. Both the
// embedded and network QueryFloat delegate here, so the two fronts
// cannot drift.
func (r *Rows) Float() (float64, error) {
	if r.Len() != 1 || len(r.Columns) != 1 {
		return 0, fmt.Errorf("maybms: expected a single cell, got %dx%d", r.Len(), len(r.Columns))
	}
	switch v := r.Data[0][0].(type) {
	case int64:
		return float64(v), nil
	case float64:
		return v, nil
	default:
		return 0, fmt.Errorf("maybms: expected a numeric cell, got %T", v)
	}
}

// QueryFloat runs a query expected to return a single numeric cell.
func (d *DB) QueryFloat(src string) (float64, error) {
	rows, err := d.Query(src)
	if err != nil {
		return 0, err
	}
	return rows.Float()
}

// Tables lists the stored tables.
func (d *DB) Tables() []string { return d.inner.TableNames() }

// ImportCSV bulk-loads CSV data (with a header row naming the columns)
// into an existing table. Cells are rendered as literals of the target
// column's type, so a numeric-looking string loads into a TEXT column
// as text; empty cells load as NULL (CSV cannot distinguish "" from
// absent).
func (d *DB) ImportCSV(table string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("maybms: csv header: %v", err)
	}
	sch, err := d.inner.SchemaOf(table)
	if err != nil {
		return 0, fmt.Errorf("maybms: csv import: %v", err)
	}
	kinds := make([]types.Kind, len(header))
	for i, col := range header {
		idx, err := sch.Resolve("", strings.TrimSpace(col))
		if err != nil {
			return 0, fmt.Errorf("maybms: csv import: %v", err)
		}
		kinds[i] = sch.Cols[idx].Kind
	}
	count := 0
	var stmt strings.Builder
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, fmt.Errorf("maybms: csv row %d: %v", count+1, err)
		}
		stmt.Reset()
		stmt.WriteString("insert into ")
		stmt.WriteString(table)
		stmt.WriteString(" (")
		stmt.WriteString(strings.Join(header, ", "))
		stmt.WriteString(") values (")
		for i, cell := range rec {
			if i > 0 {
				stmt.WriteString(", ")
			}
			stmt.WriteString(csvLiteral(cell, kinds[i]))
		}
		stmt.WriteString(")")
		if _, err := d.Exec(stmt.String()); err != nil {
			return count, fmt.Errorf("maybms: csv row %d: %v", count+1, err)
		}
		count++
	}
	return count, nil
}

// csvLiteral renders a CSV cell as a SQL literal of the target column
// kind, falling back to a quoted string when the cell does not parse
// as that kind (the insert then reports the type error).
func csvLiteral(cell string, kind types.Kind) string {
	trimmed := strings.TrimSpace(cell)
	if trimmed == "" {
		return "NULL"
	}
	switch kind {
	case types.KindInt:
		if _, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
			return trimmed
		}
	case types.KindFloat:
		// ParseFloat accepts "NaN"/"Inf", which are not SQL literals;
		// those fall through to the quoted fallback and surface as a
		// type error rather than a parser error.
		if f, err := strconv.ParseFloat(trimmed, 64); err == nil &&
			!math.IsNaN(f) && !math.IsInf(f, 0) {
			return trimmed
		}
	case types.KindBool:
		switch strings.ToLower(trimmed) {
		case "true", "false":
			return strings.ToLower(trimmed)
		}
	}
	return "'" + strings.ReplaceAll(trimmed, "'", "''") + "'"
}

// ExportCSV writes a query result as CSV with a header row.
func (d *DB) ExportCSV(w io.Writer, query string) error {
	rows, err := d.Query(query)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(rows.Columns); err != nil {
		return err
	}
	rec := make([]string, len(rows.Columns))
	for _, row := range rows.Data {
		for i, v := range row {
			if v == nil {
				rec[i] = ""
			} else {
				rec[i] = renderCell(v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MustQueryRel runs a query and returns the raw U-relation result,
// exposing per-tuple conditions. Intended for the experiment harness
// and advanced inspection; most callers want Query.
func (d *DB) MustQueryRel(src string) *urel.Rel {
	r, err := d.inner.Run(src)
	if err != nil || r.Rel == nil {
		panic(fmt.Sprintf("maybms: %v", err))
	}
	return r.Rel
}

// WorldStore exposes the database's world-set store (the registry of
// random variables), for the experiment harness and for computing
// marginals of raw conditions.
func (d *DB) WorldStore() *ws.Store { return d.inner.Store() }

// RunScript executes a script of statements and returns the last
// statement's rows (nil when it produced none, e.g. DDL) along with
// its summary. This is what interactive frontends want: one call that
// handles both queries and commands.
func (d *DB) RunScript(src string) (*Rows, Result, error) {
	r, err := d.inner.Run(src)
	if err != nil {
		return nil, Result{}, err
	}
	var rows *Rows
	if r.Rel != nil {
		rows = fromRel(r.Rel)
	}
	return rows, Result{RowsAffected: r.RowsAffected, Msg: r.Msg}, nil
}

// Posterior is a view of the database conditioned on evidence — the
// event that some query returned at least one answer (Koch & Olteanu,
// "Conditioning Probabilistic Databases", VLDB 2008). Posterior
// probabilities are exact, computed as P(A ∧ B)/P(B) by the d-tree
// solver.
type Posterior struct {
	db   *DB
	cond *condition.Conditioned
}

// ConditionOn conditions the database on the evidence that the given
// query has a non-empty answer. It fails when the evidence has
// probability zero.
func (d *DB) ConditionOn(evidenceQuery string) (*Posterior, error) {
	r, err := d.inner.Run(evidenceQuery)
	if err != nil {
		return nil, err
	}
	if r.Rel == nil {
		return nil, fmt.Errorf("maybms: evidence must be a query")
	}
	event := make(lineage.DNF, 0, r.Rel.Len())
	for _, t := range r.Rel.Tuples {
		event = append(event, t.Cond)
	}
	c, err := condition.New(d.inner.Store(), event)
	if err != nil {
		return nil, err
	}
	return &Posterior{db: d, cond: c}, nil
}

// EvidenceProb returns the prior probability of the evidence event.
func (p *Posterior) EvidenceProb() float64 { return p.cond.EvidenceProb() }

// Prob returns the posterior probability that the given query has a
// non-empty answer, given the evidence.
func (p *Posterior) Prob(query string) (float64, error) {
	r, err := p.db.inner.Run(query)
	if err != nil {
		return 0, err
	}
	if r.Rel == nil {
		return 0, fmt.Errorf("maybms: expected a query")
	}
	event := make(lineage.DNF, 0, r.Rel.Len())
	for _, t := range r.Rel.Tuples {
		event = append(event, t.Cond)
	}
	return p.cond.Prob(event), nil
}
