//go:build !race

package maybms

// raceEnabled reports whether the race detector is compiled in; the
// throughput assertion is skipped under -race, where its uniform
// slowdown distorts the parallel/serial ratio.
const raceEnabled = false
